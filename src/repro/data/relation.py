"""Relations and tuple references.

A relation is a named set of tuples over a fixed, ordered attribute list.
Set semantics are used throughout (the paper works with set semantics and
self-join-free CQs), so inserting a duplicate tuple is a no-op.

Deletion in the ADP problem operates on *input tuples*; the hashable
:class:`TupleRef` (relation name + values) is the unit that solvers return
in their solutions and that :meth:`Database.remove_tuples` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

Value = object
Row = Tuple[Value, ...]


@dataclass(frozen=True, order=True)
class TupleRef:
    """A reference to one input tuple: ``(relation name, values)``.

    ``values`` are ordered according to the relation's attribute list.  Two
    references are equal iff they point to the same relation and the same
    values, so sets of :class:`TupleRef` behave as deletion sets.
    """

    relation: str
    values: Row

    def __str__(self) -> str:
        rendered = ", ".join(str(v) for v in self.values)
        return f"{self.relation}({rendered})"


class Relation:
    """A named set of tuples over a fixed attribute list.

    Parameters
    ----------
    name:
        Relation name (matching the atom name in queries it participates in).
    attributes:
        Ordered attribute names.  May be empty: a *vacuum* relation whose
        only possible tuple is the empty tuple ``()``.
    rows:
        Optional initial tuples; each row must have one value per attribute.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
    ):
        if not name:
            raise ValueError("relation name must be non-empty")
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"relation {name} repeats an attribute: {attrs}")
        self.name = name
        self.attributes: Tuple[str, ...] = attrs
        self._rows: Set[Row] = set()
        #: monotone mutation counter; the evaluation cache keys on it, so it
        #: only moves when the tuple set actually changes.
        self._version: int = 0
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: Sequence[Value]) -> Row:
        """Insert one tuple (no-op if already present); returns the stored row."""
        stored = tuple(row)
        if len(stored) != len(self.attributes):
            raise ValueError(
                f"relation {self.name} expects {len(self.attributes)} values, "
                f"got {len(stored)}: {stored!r}"
            )
        if stored not in self._rows:
            self._rows.add(stored)
            self._version += 1
        return stored

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> None:
        """Insert several tuples."""
        for row in rows:
            self.insert(row)

    def remove(self, row: Sequence[Value]) -> bool:
        """Remove one tuple; returns ``True`` if it was present."""
        stored = tuple(row)
        if stored in self._rows:
            self._rows.remove(stored)
            self._version += 1
            return True
        return False

    def clear(self) -> None:
        """Remove every tuple."""
        if self._rows:
            self._version += 1
        self._rows.clear()

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    @property
    def rows(self) -> Set[Row]:
        """The tuple set (a copy, so callers cannot mutate storage)."""
        return set(self._rows)

    @property
    def version(self) -> int:
        """Mutation counter: bumped whenever the tuple set changes.

        The columnar evaluation cache uses ``(relation name, version)`` pairs
        to detect stale entries without hashing the stored tuples.
        """
        return self._version

    @property
    def is_vacuum(self) -> bool:
        """Whether the relation has no attributes."""
        return not self.attributes

    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def attribute_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema (``ValueError`` if absent)."""
        return self.attributes.index(attribute)

    def refs(self) -> List[TupleRef]:
        """All tuples of this relation as :class:`TupleRef` objects."""
        return [TupleRef(self.name, row) for row in sorted(self._rows, key=repr)]

    def ref(self, row: Sequence[Value]) -> TupleRef:
        """The :class:`TupleRef` for one row of this relation."""
        stored = tuple(row)
        if stored not in self._rows:
            raise KeyError(f"{stored!r} is not a tuple of {self.name}")
        return TupleRef(self.name, stored)

    # ------------------------------------------------------------------ #
    # Relational operations used by generators and examples
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[str]) -> Set[Row]:
        """Distinct projection of the relation on ``attributes``."""
        idx = [self.attribute_index(a) for a in attributes]
        return {tuple(row[i] for i in idx) for row in self._rows}

    def select(self, predicate) -> "Relation":
        """A new relation with the rows satisfying ``predicate(row_dict)``.

        ``predicate`` receives a ``{attribute: value}`` dict per row.
        """
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(self.attributes, row)))
        ]
        return Relation(self.name, self.attributes, kept)

    def select_equals(self, assignments: Dict[str, Value]) -> "Relation":
        """A new relation keeping rows matching all ``attribute == value`` pairs."""
        idx = {self.attribute_index(a): v for a, v in assignments.items()}
        kept = [
            row for row in self._rows if all(row[i] == v for i, v in idx.items())
        ]
        return Relation(self.name, self.attributes, kept)

    def copy(self, name: str | None = None) -> "Relation":
        """A deep copy (rows are immutable tuples, so a shallow row copy suffices)."""
        return Relation(name or self.name, self.attributes, self._rows)

    def drop_attributes(self, attributes: Iterable[str]) -> "Relation":
        """A copy of the relation without the given attributes.

        Rows are projected (with deduplication) onto the remaining
        attributes; used to build sub-instances for residual queries.
        """
        dropped = set(attributes)
        kept_attrs = tuple(a for a in self.attributes if a not in dropped)
        idx = [self.attributes.index(a) for a in kept_attrs]
        rows = {tuple(row[i] for i in idx) for row in self._rows}
        return Relation(self.name, kept_attrs, rows)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})[{len(self)} rows]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)
