"""In-memory relational storage.

The paper's experiments keep data in PostgreSQL; this library substitutes a
small in-memory store with set semantics:

* :class:`repro.data.relation.Relation` -- a named set of tuples over a fixed
  attribute list;
* :class:`repro.data.database.Database` -- a collection of relations forming
  an instance ``D`` of a schema;
* :class:`repro.data.relation.TupleRef` -- a hashable reference to one input
  tuple, the unit of deletion for the ADP problem;
* :mod:`repro.data.csvio` -- plain-text import/export so example datasets can
  be shipped and inspected.
"""

from repro.data.relation import Relation, TupleRef
from repro.data.database import Database
from repro.data.csvio import load_database_csv, save_database_csv

__all__ = [
    "Relation",
    "TupleRef",
    "Database",
    "load_database_csv",
    "save_database_csv",
]
