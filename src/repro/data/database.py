"""Database instances.

A :class:`Database` is a collection of :class:`~repro.data.relation.Relation`
objects, i.e. one instance ``D`` of a schema ``R``.  The ADP solvers never
mutate the database they are given; deletion candidates are explored through
copies (:meth:`Database.without`) or through the provenance index built by
the evaluation engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.data.relation import Relation, TupleRef, Value
from repro.query.cq import ConjunctiveQuery


class Database:
    """A named collection of relations (an instance ``D``)."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        schema: Mapping[str, Sequence[str]],
        rows: Mapping[str, Iterable[Sequence[Value]]] | None = None,
    ) -> "Database":
        """Build a database from ``{name: attributes}`` and optional rows.

        Example
        -------
        >>> Database.from_dict(
        ...     {"R1": ["A"], "R2": ["A", "B"]},
        ...     {"R1": [(1,), (2,)], "R2": [(1, 10)]})
        Database(R1[2], R2[1])
        """
        database = cls()
        rows = rows or {}
        for name, attributes in schema.items():
            database.add_relation(Relation(name, attributes, rows.get(name, ())))
        return database

    @classmethod
    def empty_for_query(cls, query: ConjunctiveQuery) -> "Database":
        """An empty database with one relation per atom of ``query``."""
        return cls(Relation(a.name, a.attributes) for a in query.atoms)

    def add_relation(self, relation: Relation) -> Relation:
        """Register a relation (error if the name is already taken)."""
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name} already exists")
        self._relations[relation.name] = relation
        return relation

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> Relation:
        """Return the relation called ``name`` (``KeyError`` if absent)."""
        return self._relations[name]

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self._relations)

    def total_tuples(self) -> int:
        """``|D|``: the total number of input tuples."""
        return sum(len(r) for r in self._relations.values())

    def version_token(self) -> Tuple[Tuple[str, int], ...]:
        """A cheap, hashable fingerprint of the instance's mutation state.

        One ``(relation name, relation version)`` pair per relation, in
        insertion order.  In-place mutations bump relation versions, so two
        equal tokens on the *same* ``Database`` object guarantee the stored
        tuples are unchanged -- the invariant the evaluation cache relies on.
        The token says nothing about other ``Database`` objects.
        """
        return tuple(
            (name, relation.version) for name, relation in self._relations.items()
        )

    def all_refs(self) -> List[TupleRef]:
        """Every input tuple of the database as a :class:`TupleRef`."""
        refs: List[TupleRef] = []
        for relation in self._relations.values():
            refs.extend(relation.refs())
        return refs

    # ------------------------------------------------------------------ #
    # Copies and deletions
    # ------------------------------------------------------------------ #
    def copy(self) -> "Database":
        """A deep copy of the instance."""
        return Database(r.copy() for r in self._relations.values())

    def without(self, removed: Iterable[TupleRef]) -> "Database":
        """A copy of the database with the given input tuples removed.

        Unknown references are ignored (removing an absent tuple is a no-op),
        which lets callers verify candidate deletion sets without bookkeeping.
        """
        copy = self.copy()
        for ref in removed:
            if ref.relation in copy:
                copy.relation(ref.relation).remove(ref.values)
        return copy

    def remove_tuples(self, removed: Iterable[TupleRef]) -> int:
        """Remove the given tuples *in place*; returns how many were present."""
        count = 0
        for ref in removed:
            if ref.relation in self and self.relation(ref.relation).remove(ref.values):
                count += 1
        return count

    def insert_tuples(self, inserted: Iterable[TupleRef]) -> int:
        """Insert the given tuples *in place*; returns how many were new.

        The mirror of :meth:`remove_tuples`: references to unknown relations
        are ignored and re-inserting a stored tuple is a no-op (relation
        versions only bump for rows that actually land).  Arity mismatches
        raise ``ValueError`` (from :meth:`Relation.insert`).
        """
        count = 0
        for ref in inserted:
            if ref.relation not in self:
                continue
            relation = self.relation(ref.relation)
            if tuple(ref.values) not in relation:
                relation.insert(ref.values)
                count += 1
        return count

    def contains_ref(self, ref: TupleRef) -> bool:
        """Whether the referenced tuple is present."""
        return ref.relation in self and tuple(ref.values) in self.relation(ref.relation)

    # ------------------------------------------------------------------ #
    # Query/schema coupling helpers
    # ------------------------------------------------------------------ #
    def restricted_to(self, relation_names: Iterable[str]) -> "Database":
        """A copy containing only the named relations."""
        keep = set(relation_names)
        return Database(
            r.copy() for r in self._relations.values() if r.name in keep
        )

    def project_out_attributes(
        self, query: ConjunctiveQuery, attributes: Iterable[str]
    ) -> "Database":
        """Drop ``attributes`` from every relation used by ``query``.

        Used to build instances of residual queries ``Q^{-A}``: rows are
        projected on the remaining attributes (with deduplication).
        Relations not mentioned in the query are copied unchanged.
        """
        dropped = set(attributes)
        used = set(query.relation_names)
        relations = []
        for relation in self._relations.values():
            if relation.name in used:
                relations.append(relation.drop_attributes(dropped))
            else:
                relations.append(relation.copy())
        return Database(relations)

    def aligned_to(self, query: ConjunctiveQuery) -> "Database":
        """Rename stored columns positionally to match the query's variables.

        Classical CQ notation uses *variables* as atom arguments (e.g. the
        paper's ``Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)`` over edge
        relations all stored with columns ``(A, B)``).  This library matches
        attributes by name, so such a query needs each stored relation's
        columns renamed to the variables used by its atom.  ``aligned_to``
        does exactly that: for every atom whose relation exists with the same
        arity, the columns are renamed positionally; relations not mentioned
        by the query are copied unchanged.

        Raises ``ValueError`` when an atom's arity differs from the stored
        relation's arity (renaming would be ambiguous).
        """
        atoms = query.atoms_by_name()
        relations = []
        for relation in self._relations.values():
            atom = atoms.get(relation.name)
            if atom is None:
                relations.append(relation.copy())
                continue
            if len(atom.attributes) != len(relation.attributes):
                raise ValueError(
                    f"cannot align relation {relation.name}: stored arity "
                    f"{len(relation.attributes)} != atom arity {len(atom.attributes)}"
                )
            relations.append(Relation(relation.name, atom.attributes, relation.rows))
        return Database(relations)

    def validate_against(self, query: ConjunctiveQuery) -> None:
        """Check that every atom of ``query`` has a matching relation.

        The relation must exist and its attribute set must equal the atom's
        attribute set (the order may differ).  Requiring equality keeps the
        notion of "input tuple" unambiguous: every stored row of a relation
        is exactly one removable tuple of the corresponding atom.  Raises
        ``KeyError``/``ValueError`` otherwise.
        """
        for atom in query.atoms:
            if atom.name not in self:
                raise KeyError(f"database has no relation {atom.name}")
            stored = set(self.relation(atom.name).attributes)
            if stored != atom.attribute_set:
                raise ValueError(
                    f"relation {atom.name} stores attributes {sorted(stored)} "
                    f"but the query atom uses {sorted(atom.attribute_set)}; "
                    "project the relation onto the atom's attributes first"
                )

    def __str__(self) -> str:
        inner = ", ".join(f"{r.name}[{len(r)}]" for r in self._relations.values())
        return f"Database({inner})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)
