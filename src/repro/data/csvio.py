"""CSV import/export for databases.

A database is stored as one CSV file per relation inside a directory.  The
first line of each file holds the attribute names; remaining lines hold the
tuples.  Values are read back as strings unless they parse as integers, which
is sufficient for the synthetic workloads shipped with the library.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.data.database import Database
from repro.data.relation import Relation


def _parse_value(text: str):
    """Parse a CSV cell: integers stay integers, everything else is a string."""
    try:
        return int(text)
    except ValueError:
        return text


def save_database_csv(database: Database, directory: Union[str, Path]) -> Path:
    """Write every relation of ``database`` to ``directory`` as ``<name>.csv``.

    Returns the directory path.  Existing files with the same names are
    overwritten.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for relation in database:
        target = path / f"{relation.name}.csv"
        with target.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation.attributes)
            for row in sorted(relation, key=repr):
                writer.writerow(row)
    return path


def load_database_csv(directory: Union[str, Path]) -> Database:
    """Load a database previously written by :func:`save_database_csv`.

    Every ``*.csv`` file in ``directory`` becomes one relation named after the
    file stem.
    """
    path = Path(directory)
    if not path.is_dir():
        raise FileNotFoundError(f"{path} is not a directory")
    database = Database()
    for file in sorted(path.glob("*.csv")):
        with file.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{file} is empty (missing header row)") from None
            relation = Relation(file.stem, [h.strip() for h in header])
            for row in reader:
                if not row:
                    continue
                relation.insert(tuple(_parse_value(cell) for cell in row))
        database.add_relation(relation)
    return database
