"""The asyncio HTTP/JSON front end (stdlib only).

One :class:`AdpService` owns the registry, the micro-batcher, admission
control, metrics and a solver thread pool.  The event loop does I/O and
coordination only; every solver call (solve batches, what-ifs, mutations)
runs on the thread pool -- the session read paths are thread-safe by the
contract in :mod:`repro.session`, and mutations serialize through the
registry entry's write lock.

Endpoints (all bodies JSON; see ``docs/ARCHITECTURE.md`` for the schema):

=======================  ====================================================
``GET  /healthz``        liveness + registry/queue summary
``GET  /metrics``        Prometheus text exposition
``GET  /v1/databases``   list registered databases (name, version, sizes)
``POST /v1/databases``   register ``{name, schema, rows[, replace]}``
``POST /v1/prepare``     classify ``{database, query}``
``POST /v1/solve``       ``{database, query, k|ratio[, method, counting_only,
                         deadline_ms, batch]}`` -- coalesced into
                         ``solve_many`` batches unless ``batch`` is false
``POST /v1/what_if``     ``{database, query, refs[, include_after]}``
``POST /v1/apply_deletions``  ``{database, refs}`` -- bumps the version
``POST /v1/apply_insertions``  ``{database, refs}`` -- bumps the version
``POST /v1/explain``     ``{database, query[, analyze]}`` -- the structured
                         plan + estimate-vs-actual ledger (same payload as
                         ``repro explain --json``)
``GET  /v1/debug/slow``  ring buffer of over-threshold requests
``GET  /v1/debug/stats`` ring buffer of recent plan+stats records
=======================  ====================================================

A solve request may pass ``"stats": true`` to get a ``"stats"`` block
(operator records + worst misestimate) on its response; such requests
bypass the micro-batcher so their records are not mixed with batch-mates'.

Every request is stamped with a ``trace_id`` (echoed in JSON payloads and
the ``X-Trace-Id`` header).  With ``ServiceConfig.trace`` on, solver jobs
run under a :class:`~repro.obs.trace.Tracer`: span durations feed the
per-stage latency histograms at ``/metrics`` and requests slower than
``slow_ms`` land in the slow-query log with their full span tree.

Status codes: 400 malformed/invalid request, 404 unknown database or
route, 409 name conflict, 413 oversized body, 429 overloaded (with
``Retry-After``), 500 internal, 503 database evicted mid-request or
durable storage degraded (write paths only, with ``Retry-After``), 504
deadline expired.

With ``ServiceConfig.data_dir`` set the registry gets a
:class:`~repro.storage.DatabaseStore`: registrations snapshot, mutations
write through to the log before the acknowledgement, and a restarted
process lazily rehydrates databases on first touch (see
``docs/DURABILITY.md``).
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

from repro.core.adp import ADPSolver, ratio_target

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.core.solution import ADPSolution
    from repro.data.relation import TupleRef
    from repro.session import PreparedQuery, Session
from repro.data.database import Database
from repro.data.relation import Relation
from repro.service.admission import (
    AdmissionController,
    Deadline,
    DeadlineExpired,
    Overloaded,
)
from repro.obs.render import aggregate_stage_ms
from repro.obs.slowlog import SlowQueryLog
from repro.obs.stats import (
    StatsCollector,
    StatsLog,
    StatsRecord,
    use_stats,
    worst_misestimate,
)
from repro.obs.trace import Tracer, new_trace_id, use_tracer
from repro.service.batch import MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.registry import (
    DuplicateDatabaseError,
    RegisteredDatabase,
    SessionRegistry,
)
from repro.storage import (
    DEFAULT_COMPACT_AFTER,
    DatabaseStore,
    StorageUnavailableError,
)
from repro.service.serialize import (
    database_payload,
    dumps_canonical,
    elapsed_ms,
    error_payload,
    prepare_payload,
    refs_from_json,
    solution_payload,
    what_if_payload,
)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

SOLVE_METHODS = ("auto", "greedy", "drastic")

#: The only endpoint labels metrics may carry (see _respond).
KNOWN_ENDPOINTS = frozenset({
    "/healthz", "/metrics", "/v1/databases", "/v1/prepare", "/v1/solve",
    "/v1/what_if", "/v1/apply_deletions", "/v1/apply_insertions",
    "/v1/explain", "/v1/debug/slow", "/v1/debug/stats",
})

#: The trace id of the request being served (set per request in _respond;
#: handlers pass it explicitly into thread-pool jobs, which do not inherit
#: the event loop's context).
_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_service_trace_id", default=None
)


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`AdpService` (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``AdpService.port``).
    port: int = 8080
    #: Engine/backend/workers for every registry session.
    engine: str = "columnar"
    backend: str = "auto"
    workers: int = 1
    #: LRU bound on resident databases.
    max_databases: int = 8
    #: Solver thread pool size (CPU-bound Python: more threads buy
    #: concurrency for lock draining and batching, not parallel speedup).
    executor_threads: int = 4
    #: Micro-batching window: max coalesced requests per dispatch and how
    #: long the first request of a window waits for company.
    max_batch: int = 16
    linger_ms: float = 2.0
    #: Admission bound on pending solve-class requests; excess gets 429.
    max_pending: int = 64
    retry_after_s: float = 1.0
    #: Default per-request time budget (requests may override; 0 = none).
    default_deadline_ms: float = 30_000.0
    #: Reject request bodies larger than this (bulk row uploads included).
    max_body_bytes: int = 64 * 1024 * 1024
    #: Run solver jobs under a tracer: span durations feed the per-stage
    #: histograms at /metrics, and slow requests keep their span tree.
    trace: bool = False
    #: Requests slower than this land in the slow-query log.
    slow_ms: float = 250.0
    slow_log_capacity: int = 32
    #: Ring-buffer bound on recent plan+stats records (``/v1/debug/stats``).
    stats_log_capacity: int = 64
    #: Emit one ``[access]`` log line per finished request.
    log_requests: bool = False
    #: Persist databases under this directory (None = in-memory only).
    data_dir: Optional[str] = None
    #: Mutation-log records absorbed before a compaction snapshot.
    compact_after: int = DEFAULT_COMPACT_AFTER


class ApiError(Exception):
    """An error with a definite HTTP status (raised by handlers)."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class _SolveItem:
    """One queued solve request (what travels through the batcher)."""

    __slots__ = ("query", "k", "ratio", "method", "counting_only", "deadline",
                 "collect_stats")

    def __init__(self, query: str, k: Optional[int], ratio: Optional[float],
                 method: str, counting_only: bool, deadline: Deadline,
                 collect_stats: bool = False) -> None:
        self.query = query
        self.k = k
        self.ratio = ratio
        self.method = method
        self.counting_only = counting_only
        self.deadline = deadline
        self.collect_stats = collect_stats


class _Failure:
    """A per-item failure outcome (kept distinct from payload dicts)."""

    __slots__ = ("status", "message")

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message


class AdpService:
    """The service: registry + batcher + admission + metrics + HTTP."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store: Optional[DatabaseStore] = (
            DatabaseStore(
                self.config.data_dir, compact_after=self.config.compact_after
            )
            if self.config.data_dir
            else None
        )
        self.registry = SessionRegistry(
            self.config.max_databases,
            engine=self.config.engine,
            backend=self.config.backend,
            workers=self.config.workers,
            store=self.store,
        )
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(
            self.config.max_pending, self.config.retry_after_s
        )
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-solve",
        )
        self.batcher = MicroBatcher(
            self._dispatch_batch,
            max_batch=self.config.max_batch,
            linger_ms=self.config.linger_ms,
            on_dispatch=self.metrics.batch_dispatched,
        )
        self.slow_log = SlowQueryLog(
            capacity=self.config.slow_log_capacity,
            threshold_ms=self.config.slow_ms,
        )
        self.stats_log = StatsLog(capacity=self.config.stats_log_capacity)
        #: Per-database operator gauges (last observed instrumented solve);
        #: pruned to registry-resident names at /metrics scrape time so the
        #: label cardinality is bounded by the registry LRU capacity.
        self._db_operator_gauges: Dict[str, Dict[str, float]] = {}
        self._db_gauges_lock = threading.Lock()
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: "set[asyncio.Task]" = set()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections (sets :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, flush open batch windows, close every session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        await self.batcher.flush_all()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.close)
        if self.store is not None:
            self.store.close()
        self.executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ApiError as exc:
                    body = dumps_canonical(error_payload(exc.message))
                    writer.write(
                        (
                            f"HTTP/1.1 {exc.status} "
                            f"{_REASONS.get(exc.status, 'Error')}\r\n"
                            "Content-Type: application/json\r\n"
                            f"Content-Length: {len(body)}\r\n"
                            "Connection: close\r\n\r\n"
                        ).encode("ascii") + body
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra = await self._respond(method, path, body)
                content = (
                    payload if isinstance(payload, bytes)
                    else dumps_canonical(payload)
                )
                content_type = extra.pop("content-type", "application/json")
                head = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                    f"Content-Type: {content_type}",
                    f"Content-Length: {len(content)}",
                    f"Connection: {'keep-alive' if keep_alive else 'close'}",
                ]
                head.extend(f"{name}: {value}" for name, value in extra.items())
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii"))
                writer.write(content)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:  # service shutdown with an open client
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            raise ApiError(400, "malformed request line")
        headers: Dict[str, str] = {}
        for _ in range(100):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:  # pragma: no cover - header bomb
            raise ApiError(400, "too many headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ApiError(400, "malformed Content-Length header")
        if length < 0:
            raise ApiError(400, "malformed Content-Length header")
        if length > self.config.max_body_bytes:
            raise ApiError(413, f"body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    async def _respond(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object, Dict[str, str]]:
        start = time.perf_counter()
        trace_id = new_trace_id()
        token = _TRACE_ID.set(trace_id)
        self.metrics.request_started()
        status = 500
        payload: object = None
        extra: Dict[str, str] = {}
        try:
            try:
                status, payload, extra = await self._route(method, path, body)
            except Overloaded as exc:
                self.metrics.rejected()
                status = 429
                payload = error_payload(str(exc), retry_after_s=exc.retry_after_s)
                extra = {"Retry-After": f"{exc.retry_after_s:g}"}
            except DeadlineExpired as exc:
                self.metrics.deadline_missed()
                status, payload, extra = 504, error_payload(str(exc)), {}
            except StorageUnavailableError as exc:
                # The data dir is erroring: writes cannot be made durable,
                # so they fail fast while the read path keeps serving.
                status = 503
                retry_after = self.config.retry_after_s
                payload = error_payload(
                    f"durable storage unavailable: {exc}",
                    retry_after_s=retry_after,
                )
                extra = {"Retry-After": f"{retry_after:g}"}
            except ApiError as exc:
                status = exc.status
                payload, extra = error_payload(exc.message), dict(exc.headers)
            except KeyError as exc:
                # Registry misses are mapped to 404 by _entry(); a KeyError
                # that reaches this point is a bad request (e.g. unknown
                # relation).
                status = 400
                payload = error_payload(str(exc.args[0] if exc.args else exc))
                extra = {}
            except ValueError as exc:
                status, payload, extra = 400, error_payload(str(exc)), {}
            except Exception as exc:  # pragma: no cover - last-resort 500
                status = 500
                payload, extra = error_payload(f"internal error: {exc!r}"), {}
            if isinstance(payload, dict):
                payload["trace_id"] = trace_id
            extra.setdefault("X-Trace-Id", trace_id)
            return status, payload, extra
        finally:
            _TRACE_ID.reset(token)
            # Unknown paths share one label: per-path labels for arbitrary
            # client-chosen strings would grow the metrics maps unboundedly.
            endpoint = path if path in KNOWN_ENDPOINTS else "other"
            elapsed = elapsed_ms(start, time.perf_counter())
            self.metrics.request_finished(endpoint, status, elapsed)
            if self.config.log_requests:
                database = version = "-"
                if isinstance(payload, dict):
                    database = str(payload.get("database", "-"))
                    version = str(payload.get("version", "-"))
                print(
                    f"[access] trace={trace_id} method={method} route={path} "
                    f"db={database} version={version} status={status} "
                    f"elapsed_ms={elapsed:.3f}",
                    flush=True,
                )

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object, Dict[str, str]]:
        if path == "/healthz" and method == "GET":
            return 200, self._healthz(), {}
        if path == "/metrics" and method == "GET":
            gauges = {
                "pending_requests": self.admission.pending,
                "databases_resident": len(self.registry),
                "databases_capacity": self.registry.capacity,
                "batcher_queue_depth": self.batcher.depth,
            }
            counters = {
                "registry_evictions_total": self.registry.evictions_total,
                "registry_rehydrations_total": self.registry.rehydrations_total,
            }
            if self.store is not None:
                counters.update({
                    "storage_snapshots_written_total": self.store.snapshots_written,
                    "storage_compactions_total": self.store.compactions_total,
                    "storage_records_appended_total": self.store.records_appended_total,
                    "storage_replayed_records_total": self.store.replayed_records_total,
                })
                gauges["storage_degraded"] = 1 if self.store.degraded else 0
            labeled = self._labeled_gauges()
            text = self.metrics.render(gauges, counters, labeled).encode("utf-8")
            return 200, text, {"content-type": "text/plain; version=0.0.4"}
        if path == "/v1/databases" and method == "GET":
            return 200, self._list_databases(), {}
        if path == "/v1/debug/slow" and method == "GET":
            return 200, self.slow_log.snapshot(), {}
        if path == "/v1/debug/stats" and method == "GET":
            return 200, self.stats_log.snapshot(), {}
        post_routes = {
            "/v1/databases": self._handle_register,
            "/v1/prepare": self._handle_prepare,
            "/v1/solve": self._handle_solve,
            "/v1/what_if": self._handle_what_if,
            "/v1/apply_deletions": self._handle_apply_deletions,
            "/v1/apply_insertions": self._handle_apply_insertions,
            "/v1/explain": self._handle_explain,
        }
        handler = post_routes.get(path)
        if handler is None:
            raise ApiError(404, f"no such endpoint: {method} {path}")
        if method != "POST":
            raise ApiError(405, f"{path} only accepts POST")
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ApiError(400, "request body must be a JSON object")
        return await handler(parsed)

    # ------------------------------------------------------------------ #
    # Metadata endpoints
    # ------------------------------------------------------------------ #
    def _healthz(self) -> dict:
        payload = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "databases": len(self.registry),
            "pending_requests": self.admission.pending,
            "metrics": self.metrics.snapshot(),
        }
        if self.store is not None:
            # Recovery state: persisted names, replay counters, degradation.
            storage = self.store.stats()
            storage["rehydrations_total"] = self.registry.rehydrations_total
            payload["storage"] = storage
            if self.store.degraded:
                payload["status"] = "degraded"
        return payload

    def _list_databases(self) -> dict:
        return {
            "databases": [
                database_payload(
                    entry.name, entry.version, entry.database,
                    backend=entry.session.backend, engine=entry.session.engine,
                    workers=entry.session.workers,
                )
                for entry in self.registry.entries()
            ]
        }

    async def _handle_register(self, body: dict) -> Tuple[int, dict, dict]:
        name = _require_str(body, "name")
        schema = body.get("schema")
        if not isinstance(schema, dict) or not schema:
            raise ApiError(400, "schema must be a non-empty object "
                                "{relation: [attributes...]}")
        rows = body.get("rows") or {}
        if not isinstance(rows, dict):
            raise ApiError(400, "rows must be an object {relation: [[...], ...]}")
        for relation_name, attributes in schema.items():
            if not isinstance(attributes, list):
                raise ApiError(400, f"schema[{relation_name}] must be a list")

        def job() -> "Tuple[RegisteredDatabase, Database]":
            # Row materialization and (on LRU overflow) the evicted entry's
            # Session.close() -- which drains that entry's in-flight solves
            # -- must not run on the event loop.
            relations = [
                Relation(rel, attrs, [tuple(r) for r in rows.get(rel, [])])
                for rel, attrs in schema.items()
            ]
            database = Database(relations)
            entry = self.registry.register(
                name, database, replace=bool(body.get("replace", False))
            )
            return entry, database

        loop = asyncio.get_running_loop()
        try:
            entry, database = await loop.run_in_executor(self.executor, job)
        except DuplicateDatabaseError as exc:
            raise ApiError(409, str(exc))
        # Any other ValueError (bad row arity, invalid name) is a 400 via
        # the generic handler in _respond.
        return 200, database_payload(
            entry.name, entry.version, database,
            backend=entry.session.backend, engine=entry.session.engine,
            workers=entry.session.workers,
        ), {}

    def _entry(self, name: str) -> RegisteredDatabase:
        """The registry entry for ``name``, or a definite 404."""
        try:
            return self.registry.get(name)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0]))

    async def _handle_prepare(self, body: dict) -> Tuple[int, dict, dict]:
        entry = self._entry(_require_str(body, "database"))
        query = _require_str(body, "query")

        def job() -> dict:
            with entry.lock.read():
                if entry.session.closed:
                    raise ApiError(
                        503, f"database {entry.name!r} has been evicted"
                    )
                return entry.session.prepare(query), entry.version

        loop = asyncio.get_running_loop()
        prepared, version = await loop.run_in_executor(self.executor, job)
        payload = prepare_payload(prepared)
        payload.update({"database": entry.name, "version": version})
        return 200, payload, {}

    # ------------------------------------------------------------------ #
    # Solve path (admission -> batcher -> thread pool -> solve_many)
    # ------------------------------------------------------------------ #
    async def _handle_solve(self, body: dict) -> Tuple[int, dict, dict]:
        start = time.perf_counter()
        entry = self._entry(_require_str(body, "database"))
        query = _require_str(body, "query")
        method = body.get("method", "greedy")
        if method not in SOLVE_METHODS:
            raise ApiError(400, f"method must be one of {SOLVE_METHODS}")
        if method == "auto":
            method = "greedy"
        counting_only = bool(body.get("counting_only", False))
        k = body.get("k")
        ratio = body.get("ratio")
        if (k is None) == (ratio is None):
            raise ApiError(400, "pass exactly one of k or ratio")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool)):
            raise ApiError(400, f"k must be an integer, got {k!r}")
        if ratio is not None and (
            not isinstance(ratio, (int, float)) or isinstance(ratio, bool)
        ):
            raise ApiError(400, f"ratio must be a number, got {ratio!r}")
        deadline = self._deadline_of(body)
        deadline.check()  # an already-spent budget never enters the queue
        collect_stats = bool(body.get("stats", False))
        item = _SolveItem(
            query, k, ratio, method, counting_only, deadline, collect_stats
        )
        # Stats-requesting solves bypass the batcher: a batch shares one
        # collector, so its records could not be attributed to one request.
        use_batch = (
            bool(body.get("batch", True))
            and self.batcher.enabled
            and not collect_stats
        )
        with self.admission:
            if use_batch:
                key = (entry.name, entry.version, method, counting_only)
                outcome = await self.batcher.submit(key, item)
            else:
                self.metrics.solve_dispatched()
                loop = asyncio.get_running_loop()
                outcome = (
                    await loop.run_in_executor(
                        self.executor, self._solve_batch_job, entry, [item],
                        _TRACE_ID.get(),
                    )
                )[0]
        if isinstance(outcome, _Failure):
            if outcome.status == 504:
                self.metrics.deadline_missed()
            raise ApiError(outcome.status, outcome.message)
        outcome["elapsed_ms"] = elapsed_ms(start, time.perf_counter())
        return 200, outcome, {}

    def _deadline_of(self, body: dict) -> Deadline:
        raw = body.get("deadline_ms", self.config.default_deadline_ms)
        if raw is None or (isinstance(raw, (int, float)) and raw <= 0):
            return Deadline(None)
        if not isinstance(raw, (int, float)):
            raise ApiError(400, f"deadline_ms must be a number, got {raw!r}")
        return Deadline(float(raw))

    async def _dispatch_batch(
        self, key: Hashable, items: List[_SolveItem]
    ) -> List[object]:
        name = key[0]  # type: ignore[index]  # batch keys are (name, ...) tuples
        try:
            entry = self.registry.get(name)
        except KeyError:
            return [
                _Failure(503, f"database {name!r} was evicted while queued")
            ] * len(items)
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            self.executor, self._solve_batch_job, entry, items
        )
        if len(items) > 1:
            for outcome in outcomes:
                if isinstance(outcome, dict):
                    outcome["batched"] = True
        return outcomes

    def _solve_batch_job(
        self,
        entry: RegisteredDatabase,
        items: List[_SolveItem],
        trace_id: Optional[str] = None,
    ) -> List[object]:
        """Thread-pool body: validate, group, ``solve_many``, serialize.

        With tracing on, the whole batch runs under one tracer (batches
        coalesce several requests, so the batch keeps its own trace id
        unless a singleton dispatch hands down the request's).  Span
        durations feed the stage histograms; over-threshold batches land
        in the slow-query log with their span tree.

        Operator statistics are collected whenever tracing is on (feeding
        the per-database gauges and the slow log's worst-misestimate field)
        or a request asked for them with ``"stats": true`` (always a
        singleton dispatch -- see ``_handle_solve``).
        """
        want_stats = self.config.trace or any(
            item.collect_stats for item in items
        )
        if not want_stats:
            return self._solve_batch_inner(entry, items)
        collector = StatsCollector()
        plans: List[str] = []
        start = time.perf_counter()
        if self.config.trace:
            tracer = Tracer(trace_id)
            with use_tracer(tracer), use_stats(collector):
                with tracer.span("service.solve_batch", requests=len(items)):
                    outcomes = self._solve_batch_inner(entry, items, plans)
        else:
            tracer = None
            with use_stats(collector):
                outcomes = self._solve_batch_inner(entry, items, plans)
        records = collector.export()
        worst = worst_misestimate(records)
        if tracer is not None:
            self._observe_trace(
                tracer, "/v1/solve", entry, plans,
                elapsed_ms(start, time.perf_counter()), worst,
            )
        self._observe_stats(entry.name, records)
        for item, outcome in zip(items, outcomes):
            if item.collect_stats and isinstance(outcome, dict):
                outcome["stats"] = {
                    "operators": records,
                    "worst_misestimate": worst,
                }
                self.stats_log.record({
                    "route": "/v1/solve",
                    "database": entry.name,
                    "version": entry.version,
                    "plans": sorted(set(plans)),
                    "worst_misestimate": worst,
                    "operators": records,
                    "recorded_at": round(time.time(), 3),
                })
        return outcomes

    def _observe_stats(
        self, database: str, records: "List[StatsRecord]"
    ) -> None:
        """Fold one solve's operator records into the per-database gauges.

        Gauges report the *last observed* instrumented solve.  The map is
        keyed by database name and pruned to registry-resident names at
        scrape time (:meth:`_labeled_gauges`), so its label cardinality is
        bounded by the registry LRU capacity and evicted databases drop
        out of ``/metrics``.
        """
        joins = [r for r in records if r.get("op") == "join.atom"]
        if not joins:
            return
        heavy = sum(
            1 for r in joins
            if isinstance(r.get("keys"), dict) and r["keys"].get("heavy_hitter")  # type: ignore[union-attr]
        )
        gauges = {
            "operator_join_steps": float(len(joins)),
            "operator_witnesses": float(
                sum(int(r.get("witnesses", 0)) for r in joins)  # type: ignore[arg-type]
            ),
            "operator_mispredicted_steps": float(
                sum(1 for r in joins if r.get("misestimated"))
            ),
            "operator_heavy_hitter_steps": float(heavy),
            "operator_max_expansion": max(
                float(r.get("expansion", 0.0)) for r in joins  # type: ignore[arg-type]
            ),
        }
        with self._db_gauges_lock:
            self._db_operator_gauges[database] = gauges

    def _labeled_gauges(self) -> Dict[str, Dict[str, float]]:
        """Per-database gauges, pruned to resident names (bounded labels)."""
        resident = {entry.name for entry in self.registry.entries()}
        with self._db_gauges_lock:
            for name in [
                n for n in self._db_operator_gauges if n not in resident
            ]:
                del self._db_operator_gauges[name]
            per_db = {
                name: dict(values)
                for name, values in self._db_operator_gauges.items()
            }
        labeled: Dict[str, Dict[str, float]] = {}
        for name, values in per_db.items():
            for metric, value in values.items():
                labeled.setdefault(metric, {})[name] = value
        return labeled

    def _observe_trace(
        self,
        tracer: Tracer,
        route: str,
        entry: RegisteredDatabase,
        plans: List[str],
        elapsed: float,
        worst: Optional[StatsRecord] = None,
    ) -> None:
        """Feed one traced job into the stage histograms and the slow log.

        ``worst`` is the job's worst-misestimated operator record (when
        stats ran alongside the trace): a slow query whose estimate was
        badly off is usually slow *because* of it, so the slow log keeps
        the pair together.
        """
        spans = tracer.export()
        for stage, total in aggregate_stage_ms(spans).items():
            self.metrics.stage_observed(stage, total)
        if self.slow_log.should_record(elapsed):
            self.metrics.slow_request()
            self.slow_log.record({
                "trace_id": tracer.trace_id,
                "route": route,
                "database": entry.name,
                "version": entry.version,
                "plans": sorted(set(plans)),
                "worst_misestimate": worst,
                "elapsed_ms": round(elapsed, 3),
                "recorded_at": round(time.time(), 3),
                "spans": spans,
            })

    def _solve_batch_inner(
        self,
        entry: RegisteredDatabase,
        items: List[_SolveItem],
        plans_out: Optional[List[str]] = None,
    ) -> List[object]:
        """The untraced batch body: validate, group, ``solve_many``, serialize.

        Per-item failures (bad query, infeasible target, expired deadline)
        become :class:`_Failure` outcomes -- one bad request must never
        poison its batch-mates.  Runs under the entry's read lock: any
        number of these jobs share the session concurrently, while
        ``apply_deletions`` drains them before mutating.
        """
        with entry.lock.read():
            session = entry.session
            if session.closed:
                return [
                    _Failure(503, f"database {entry.name!r} has been evicted")
                ] * len(items)
            version = entry.version
            outcomes: List[object] = [None] * len(items)
            requests: List[tuple] = []
            positions: List[int] = []
            prepared_of: Dict[int, object] = {}
            for i, item in enumerate(items):
                if item.deadline.expired:
                    outcomes[i] = _Failure(
                        504,
                        f"deadline of {item.deadline.budget_ms:g} ms expired "
                        "while queued",
                    )
                    continue
                try:
                    prepared = session.prepare(item.query)
                    if plans_out is not None:
                        plans_out.append(prepared.plan_fingerprint)
                    total = session.output_size(prepared)
                    if total == 0:
                        outcomes[i] = self._success(
                            session, prepared, 0, None, entry.name, version
                        )
                        continue
                    k = (
                        item.k if item.k is not None
                        else ratio_target(total, float(item.ratio))
                    )
                    if not 1 <= k <= total:
                        raise ValueError(
                            f"k={k} outside 1 <= k <= |Q(D)|={total}"
                        )
                except (ValueError, KeyError) as exc:
                    outcomes[i] = _Failure(400, str(exc))
                    continue
                prepared_of[i] = prepared
                requests.append((prepared, k))
                positions.append(i)
            if requests:
                solver = ADPSolver(
                    heuristic=items[positions[0]].method,
                    counting_only=items[positions[0]].counting_only,
                )
                solutions = session.solve_many(requests, solver=solver)
                for position, solution in zip(positions, solutions):
                    prepared = prepared_of[position]
                    outcomes[position] = self._success(
                        session,
                        prepared,
                        session.output_size(prepared),
                        solution,
                        entry.name,
                        version,
                    )
            return outcomes

    def _success(
        self,
        session: "Session",
        prepared: "PreparedQuery",
        total: int,
        solution: "Optional[ADPSolution]",
        name: str,
        version: int,
    ) -> dict:
        payload = solution_payload(session, prepared, total, solution)
        payload.update({"database": name, "version": version, "batched": False})
        return payload

    # ------------------------------------------------------------------ #
    # What-if and deletions
    # ------------------------------------------------------------------ #
    async def _handle_what_if(self, body: dict) -> Tuple[int, dict, dict]:
        start = time.perf_counter()
        entry = self._entry(_require_str(body, "database"))
        query = _require_str(body, "query")
        refs = refs_from_json(body.get("refs", []))
        include_after = bool(body.get("include_after", False))
        with self.admission:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self.executor,
                self._what_if_job, entry, query, refs, include_after,
                _TRACE_ID.get(),
            )
        payload["elapsed_ms"] = elapsed_ms(start, time.perf_counter())
        return 200, payload, {}

    def _what_if_job(
        self,
        entry: RegisteredDatabase,
        query: str,
        refs: "List[TupleRef]",
        include_after: bool,
        trace_id: Optional[str] = None,
    ) -> dict:
        if not self.config.trace:
            return self._what_if_inner(entry, query, refs, include_after)
        tracer = Tracer(trace_id)
        start = time.perf_counter()
        with use_tracer(tracer):
            with tracer.span("service.what_if", refs=len(refs)):
                payload = self._what_if_inner(entry, query, refs, include_after)
        self._observe_trace(
            tracer, "/v1/what_if", entry, [],
            elapsed_ms(start, time.perf_counter()),
        )
        return payload

    def _what_if_inner(
        self,
        entry: RegisteredDatabase,
        query: str,
        refs: "List[TupleRef]",
        include_after: bool,
    ) -> dict:
        with entry.lock.read():
            if entry.session.closed:
                raise ApiError(503, f"database {entry.name!r} has been evicted")
            result = entry.session.what_if(refs, query)
            payload = what_if_payload(result.single, include_after=include_after)
            payload.update({"database": entry.name, "version": entry.version})
            return payload

    # ------------------------------------------------------------------ #
    # Explain
    # ------------------------------------------------------------------ #
    async def _handle_explain(self, body: dict) -> Tuple[int, dict, dict]:
        """Structured plan introspection: ``Session.explain`` over HTTP.

        Returns the same payload schema as ``repro explain --json`` --
        plan fingerprints are identical across the CLI and the service
        because both reuse ``PreparedQuery.plan_fingerprint`` verbatim.
        """
        start = time.perf_counter()
        entry = self._entry(_require_str(body, "database"))
        query = _require_str(body, "query")
        analyze = bool(body.get("analyze", True))
        with self.admission:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self.executor, self._explain_job, entry, query, analyze
            )
        payload["elapsed_ms"] = elapsed_ms(start, time.perf_counter())
        return 200, payload, {}

    def _explain_job(
        self, entry: RegisteredDatabase, query: str, analyze: bool
    ) -> dict:
        with entry.lock.read():
            if entry.session.closed:
                raise ApiError(503, f"database {entry.name!r} has been evicted")
            try:
                payload = entry.session.explain(query, analyze=analyze)
            except (ValueError, KeyError) as exc:
                raise ApiError(400, str(exc))
            payload.update({"database": entry.name, "version": entry.version})
        execution = payload.get("execution")
        if not isinstance(execution, dict):
            return payload
        operators = execution.get("operators", [])
        if analyze and operators:
            self._observe_stats(entry.name, operators)
            plan: Dict[str, object] = payload["plan"]  # type: ignore[assignment]
            self.stats_log.record({
                "route": "/v1/explain",
                "database": entry.name,
                "version": entry.version,
                "plan": plan.get("fingerprint"),
                "flags": execution.get("flags"),
                "worst_misestimate": execution.get("worst_misestimate"),
                "operators": operators,
                "recorded_at": round(time.time(), 3),
            })
        return payload

    async def _handle_apply_deletions(self, body: dict) -> Tuple[int, dict, dict]:
        start = time.perf_counter()
        name = _require_str(body, "database")
        entry = self._entry(name)  # 404 before queueing work
        refs = refs_from_json(body.get("refs", []))
        with self.admission:
            loop = asyncio.get_running_loop()
            try:
                removed, version = await loop.run_in_executor(
                    self.executor, self.registry.apply_deletions, name, refs
                )
            except KeyError:
                # Evicted between the _entry() check and the dispatch.
                raise ApiError(404, f"no database named {name!r}")
        self.metrics.deletions_applied(removed)
        return 200, {
            "database": entry.name,
            "removed": removed,
            "version": version,
            "elapsed_ms": elapsed_ms(start, time.perf_counter()),
        }, {}

    async def _handle_apply_insertions(self, body: dict) -> Tuple[int, dict, dict]:
        start = time.perf_counter()
        name = _require_str(body, "database")
        entry = self._entry(name)  # 404 before queueing work
        refs = refs_from_json(body.get("refs", []))
        with self.admission:
            loop = asyncio.get_running_loop()
            try:
                added, version = await loop.run_in_executor(
                    self.executor, self.registry.apply_insertions, name, refs
                )
            except KeyError:
                # Evicted between the _entry() check and the dispatch.
                raise ApiError(404, f"no database named {name!r}")
        self.metrics.insertions_applied(added)
        return 200, {
            "database": entry.name,
            "added": added,
            "version": version,
            "elapsed_ms": elapsed_ms(start, time.perf_counter()),
        }, {}


def _require_str(body: dict, field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise ApiError(400, f"{field!r} must be a non-empty string")
    return value


class ServiceRunner:
    """Run an :class:`AdpService` on a background thread (own event loop).

    The embedding story for tests, the load harness and the example
    client: ``start()`` blocks until the port is bound, ``close()`` tears
    everything down (sessions and worker pools included).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.service = AdpService(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.service.port is not None, "runner not started"
        return self.service.port

    @property
    def url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "ServiceRunner":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)

            async def boot() -> None:
                try:
                    await self.service.start()
                except BaseException as exc:  # pragma: no cover - bind failure
                    self._startup_error = exc
                finally:
                    self._ready.set()

            self._loop.create_task(boot())
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - hung startup
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def close(self, timeout: float = 30.0) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.service.close(), self._loop)
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


async def serve(
    config: ServiceConfig,
    preload: Optional[Dict[str, Database]] = None,
) -> None:
    """Run a service until cancelled (the ``repro serve`` entry point).

    ``preload`` registers databases before the port opens, so a client that
    sees the listening line can rely on them being resident.
    """
    service = AdpService(config)
    for name, database in (preload or {}).items():
        service.registry.register(name, database)
    await service.start()
    print(f"repro service listening on http://{config.host}:{service.port}",
          flush=True)
    try:
        await service.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - signal path
        pass
    finally:
        await service.close()


__all__ = [
    "AdpService",
    "ApiError",
    "ServiceConfig",
    "ServiceRunner",
    "serve",
]
