"""Admission control: bounded concurrency, overload shedding, deadlines.

The solver tier is CPU-bound Python: queueing more work than the thread
pool can absorb only grows latency without growing throughput.  The
:class:`AdmissionController` therefore bounds the number of requests that
may be *pending* (queued in the micro-batcher or executing on the pool) and
rejects the excess immediately with :class:`Overloaded`, which the HTTP
layer maps to ``429 Too Many Requests`` plus a ``Retry-After`` header --
the client-visible backpressure signal.

:class:`Deadline` carries a per-request time budget.  A request that is
still waiting (in the admission queue or a batch window) when its deadline
passes is dropped *before* any solver work is spent on it and answered
with ``504``; an expired deadline discovered mid-execution only affects the
response, never the shared session state.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class Overloaded(Exception):
    """The service is at capacity; retry after ``retry_after_s`` seconds."""

    def __init__(self, pending: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue full ({pending}/{limit} pending); "
            f"retry after {retry_after_s:g}s"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


class DeadlineExpired(Exception):
    """The request's time budget ran out before it could be served."""


class Deadline:
    """A monotonic per-request time budget (``None`` budget = no deadline)."""

    __slots__ = ("budget_ms", "_expires_at")

    def __init__(self, budget_ms: Optional[float]) -> None:
        self.budget_ms = budget_ms
        self._expires_at = (
            None if budget_ms is None else time.monotonic() + budget_ms / 1000.0
        )

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left, floored at 0 (``None`` when unbounded)."""
        if self._expires_at is None:
            return None
        return max(0.0, (self._expires_at - time.monotonic()) * 1000.0)

    def check(self) -> None:
        """Raise :class:`DeadlineExpired` when the budget ran out."""
        if self.expired:
            raise DeadlineExpired(
                f"deadline of {self.budget_ms:g} ms expired before completion"
            )


class AdmissionController:
    """A bounded pending-request counter with an overload signal.

    ``max_pending`` bounds solve-class requests only (cheap metadata reads
    are never queued behind the solver).  The counter is lock-guarded
    because admissions happen on the event loop while releases happen on
    solver threads.
    """

    def __init__(self, max_pending: int = 64, retry_after_s: float = 1.0) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self.retry_after_s = float(retry_after_s)
        self._lock = threading.Lock()
        self._pending = 0

    @property
    def pending(self) -> int:
        """Requests currently admitted (queued or executing)."""
        with self._lock:
            return self._pending

    def acquire(self) -> None:
        """Admit one request or raise :class:`Overloaded` (no blocking).

        Shedding instead of blocking keeps the event loop responsive and
        gives clients an actionable signal (``Retry-After``) instead of an
        ever-growing invisible queue.
        """
        with self._lock:
            if self._pending >= self.max_pending:
                raise Overloaded(self._pending, self.max_pending, self.retry_after_s)
            self._pending += 1

    def release(self) -> None:
        with self._lock:
            if self._pending <= 0:  # pragma: no cover - release/acquire bug guard
                raise RuntimeError("admission release without acquire")
            self._pending -= 1

    def __enter__(self) -> "AdmissionController":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


__all__ = ["AdmissionController", "Deadline", "DeadlineExpired", "Overloaded"]
