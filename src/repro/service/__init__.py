"""repro.service -- the ADP query service tier.

An asyncio HTTP/JSON front end over :class:`repro.session.Session`: named,
versioned databases are bound to long-lived sessions in a
:class:`~repro.service.registry.SessionRegistry`, concurrent solve requests
are coalesced into :meth:`~repro.session.Session.solve_many` batches by the
:class:`~repro.service.batch.MicroBatcher`, and an admission layer
(:mod:`repro.service.admission`) sheds load with ``429 Retry-After`` before
the solver queue grows unbounded.

Everything is standard library only -- the server is an
``asyncio.start_server`` loop speaking HTTP/1.1 with keep-alive, and solver
work runs on a thread pool (session read paths are thread-safe by the
contract documented in :mod:`repro.session`).

Quick start::

    from repro.service import AdpService, ServiceConfig, ServiceRunner

    runner = ServiceRunner(ServiceConfig(port=0))   # ephemeral port
    runner.start()
    ...  # speak JSON over HTTP to 127.0.0.1:runner.port
    runner.close()

or from the command line::

    python -m repro serve --port 8080 --load tpch=./tpch_csv

See ``docs/ARCHITECTURE.md`` ("Service tier") for the endpoint reference
and the versioned-read / batching semantics.
"""

from repro.service.admission import AdmissionController, Deadline, Overloaded
from repro.service.batch import MicroBatcher
from repro.service.http import AdpService, ServiceConfig, ServiceRunner
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ReadWriteLock, RegisteredDatabase, SessionRegistry
from repro.service.serialize import (
    dumps_canonical,
    refs_from_json,
    refs_to_json,
    solution_payload,
)

__all__ = [
    "AdmissionController",
    "AdpService",
    "Deadline",
    "MicroBatcher",
    "Overloaded",
    "ReadWriteLock",
    "RegisteredDatabase",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceRunner",
    "SessionRegistry",
    "dumps_canonical",
    "refs_from_json",
    "refs_to_json",
    "solution_payload",
]
