"""The one solve-result JSON schema, shared by the CLI and the service.

``repro solve --json`` and the service's ``POST /v1/solve`` must answer with
the *same* payload for the same solve -- that parity is an acceptance test,
so the serialization lives in exactly one place.  The CLI adds an
``elapsed_ms`` field on top; the service adds its own envelope fields
(``database``, ``version``, ``batched``, ``elapsed_ms``) next to the same
stable solution schema.

Tuple references cross the wire as ``["Relation", [value, ...]]`` pairs.
JSON has fewer scalar types than Python, so a round-tripped ref only
matches a stored tuple when the database itself was loaded from the same
JSON value domain (the service's ``POST /v1/databases``) or from CSV
(strings); :func:`refs_from_json` is intentionally literal and performs no
coercion.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.data.relation import TupleRef

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.core.solution import ADPSolution
    from repro.data.database import Database
    from repro.session import PreparedQuery, Session, WhatIfEntry


def solution_payload(
    session: "Session",
    prepared: "PreparedQuery",
    total: int,
    solution: "Optional[ADPSolution]",
) -> dict:
    """The stable JSON schema of one solve (shared CLI/service serializer).

    ``solution`` may be ``None`` for the empty-result case (``|Q(D)| = 0``
    is a legitimate answer: nothing to remove, objective 0).  Every field
    is deterministic for a deterministic solve -- the parity suite compares
    these payloads byte for byte across transports.
    """
    return {
        "query": str(prepared.query),
        "classification": prepared.classification,
        "engine": session.engine,
        "backend": session.backend,
        "workers": session.workers,
        "output_size": total,
        "k": solution.k if solution else 0,
        "objective": solution.size if solution else 0,
        "removed_outputs": solution.removed_outputs if solution else 0,
        "optimal": solution.optimal if solution else True,
        "method": solution.method if solution else "empty-result",
        "removed": (
            sorted(str(ref) for ref in solution.removed) if solution else []
        ),
    }


def prepare_payload(prepared: "PreparedQuery") -> dict:
    """The stable JSON schema of one prepared query (``POST /v1/prepare``)."""
    return {
        "query": str(prepared.query),
        "name": prepared.name,
        "classification": prepared.classification,
        "is_poly_time": prepared.is_poly_time,
        "is_singleton": prepared.is_singleton,
        "is_boolean": prepared.is_boolean,
        "is_full": prepared.is_full,
        "is_connected": prepared.is_connected,
        "universal_attributes": sorted(prepared.universal_attributes),
        "join_order": list(prepared.join_order),
        "partition_key": prepared.partition_key,
    }


def refs_to_json(refs: Iterable[TupleRef]) -> List[list]:
    """Tuple references as wire pairs, deterministically ordered."""
    return [
        [ref.relation, list(ref.values)]
        for ref in sorted(refs, key=lambda r: (r.relation, str(r.values)))
    ]


def refs_from_json(raw: Sequence) -> List[TupleRef]:
    """Parse wire-format tuple references (``["R", [v, ...]]`` pairs).

    Raises ``ValueError`` with a client-friendly message on malformed input
    (the HTTP layer maps it to a 400).
    """
    if not isinstance(raw, (list, tuple)):
        raise ValueError("refs must be a list of [relation, [values...]] pairs")
    refs: List[TupleRef] = []
    for item in raw:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not isinstance(item[0], str)
            or not isinstance(item[1], (list, tuple))
        ):
            raise ValueError(
                f"malformed ref {item!r}; expected [relation, [values...]]"
            )
        values = [tuple(v) if isinstance(v, list) else v for v in item[1]]
        refs.append(TupleRef(item[0], tuple(values)))
    return refs


def dumps_canonical(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, compact separators, UTF-8.

    One encoder for every service response, so identical payloads are
    byte-identical on the wire (what the parity acceptance test asserts).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def elapsed_ms(start: float, end: float) -> float:
    """Wall-clock milliseconds, rounded to a stable 0.001 ms resolution."""
    return round((end - start) * 1000.0, 3)


def database_to_wire(database: "Database") -> dict:
    """A database as a ``POST /v1/databases`` body fragment.

    The client-side counterpart of :func:`_handle_register`'s parsing:
    ``{"schema": {relation: [attributes...]}, "rows": {relation: [[...]]}}``
    (merge in ``name``/``replace`` before posting).  Used by the load
    harness and the test-suite; values must be JSON-representable.
    """
    return {
        "schema": {r.name: list(r.attributes) for r in database},
        "rows": {r.name: [list(row) for row in r.rows] for r in database},
    }


def database_payload(name: str, version: int, database: "Database", *,
                     backend: str, engine: str, workers: int) -> dict:
    """The JSON schema of one registry entry (``GET /v1/databases``)."""
    return {
        "name": name,
        "version": version,
        "engine": engine,
        "backend": backend,
        "workers": workers,
        "relations": {r.name: len(r) for r in database},
        "total_tuples": database.total_tuples(),
    }


def what_if_payload(entry: "WhatIfEntry", *, include_after: bool = False) -> dict:
    """The JSON schema of one what-if entry (``POST /v1/what_if``).

    ``include_after`` additionally materializes the post-deletion result
    (a delta semijoin) and reports its output/witness counts.
    """
    payload = {
        "query": str(entry.prepared.query),
        "outputs_removed": entry.outputs_removed,
        "witnesses_removed": entry.witnesses_removed,
        "output_size_before": entry.before.output_count(),
        "witness_count_before": entry.before.witness_count(),
    }
    if include_after:
        payload["output_size_after"] = entry.after.output_count()
        payload["witness_count_after"] = entry.after.witness_count()
    return payload


def error_payload(message: str, *, retry_after_s: Optional[float] = None) -> dict:
    """The uniform error body (every non-2xx response uses it)."""
    payload = {"error": message}
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
    return payload


__all__ = [
    "database_payload",
    "database_to_wire",
    "dumps_canonical",
    "elapsed_ms",
    "error_payload",
    "prepare_payload",
    "refs_from_json",
    "refs_to_json",
    "solution_payload",
    "what_if_payload",
]
