"""Micro-batching: coalesce concurrent solve requests into one dispatch.

``Session.solve_many`` amortizes the expensive part of an ADP solve -- one
evaluation and **one cost curve per distinct query**, read off at every
requested target -- but only when requests arrive *as a batch*.  Under
concurrent HTTP load they arrive as individual requests microseconds
apart.  The :class:`MicroBatcher` turns that stream back into batches:

* requests are grouped by a caller-chosen **key** (the service keys on
  ``(database, version, solver configuration)`` -- everything that must be
  uniform within one ``solve_many`` call; queries may differ, the session
  groups them internally);
* the first request of a group opens a **linger window** (``linger_ms``);
  everything arriving for the same key within the window joins the batch;
* the window closes early when the batch reaches ``max_batch``, and the
  whole group is handed to the dispatch callable as one list.

With ``max_batch=1`` (or ``enabled=False``) every request dispatches as a
singleton immediately -- the configuration the load harness uses as its
per-request baseline, and the fallback the service applies to requests
that opt out (``"batch": false``).

The batcher is a pure asyncio component: ``submit`` must be called on the
event loop.  The dispatch callable is ``async`` and returns one outcome
per item (any value, including an exception instance the caller encodes
itself); if dispatch *raises*, every waiter of that batch receives the
exception.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Optional, Tuple

#: ``async def dispatch(key, items) -> [outcome per item]``.
DispatchFn = Callable[[Hashable, List[Any]], Awaitable[List[Any]]]


class _PendingBatch:
    __slots__ = ("items", "futures", "timer", "flushed")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.futures: List[asyncio.Future] = []
        self.timer: Optional[asyncio.TimerHandle] = None
        self.flushed = False


class MicroBatcher:
    """Group concurrent ``submit`` calls per key into batched dispatches."""

    def __init__(
        self,
        dispatch: DispatchFn,
        *,
        max_batch: int = 16,
        linger_ms: float = 2.0,
        enabled: bool = True,
        on_dispatch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {linger_ms}")
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.linger_s = float(linger_ms) / 1000.0
        self.enabled = bool(enabled) and self.max_batch > 1
        #: Observability hook: called with the batch size at each dispatch.
        self.on_dispatch = on_dispatch
        self._pending: Dict[Hashable, _PendingBatch] = {}

    async def submit(self, key: Hashable, item: Any) -> Any:
        """Queue ``item`` under ``key``; resolves to its dispatch outcome."""
        if not self.enabled:
            return await self._dispatch_now(key, [item], None)
        loop = asyncio.get_running_loop()
        batch = self._pending.get(key)
        if batch is None or batch.flushed:
            batch = _PendingBatch()
            self._pending[key] = batch
            batch.timer = loop.call_later(
                self.linger_s, lambda: asyncio.ensure_future(self._flush(key, batch))
            )
        future: asyncio.Future = loop.create_future()
        batch.items.append(item)
        batch.futures.append(future)
        if len(batch.items) >= self.max_batch:
            await self._flush(key, batch)
        return await future

    async def flush_all(self) -> None:
        """Flush every open window now (shutdown path)."""
        for key, batch in list(self._pending.items()):
            await self._flush(key, batch)

    @property
    def pending_keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._pending)

    @property
    def depth(self) -> int:
        """Requests waiting in open (unflushed) windows right now."""
        return sum(
            len(batch.items)
            for batch in self._pending.values()
            if not batch.flushed
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    async def _flush(self, key: Hashable, batch: _PendingBatch) -> None:
        if batch.flushed:
            return
        batch.flushed = True
        if batch.timer is not None:
            batch.timer.cancel()
        if self._pending.get(key) is batch:
            del self._pending[key]
        if not batch.items:  # pragma: no cover - timer fired on empty batch
            return
        await self._dispatch_now(key, batch.items, batch.futures)

    async def _dispatch_now(
        self,
        key: Hashable,
        items: List[Any],
        futures: Optional[List[asyncio.Future]],
    ) -> Any:
        if self.on_dispatch is not None:
            self.on_dispatch(len(items))
        try:
            outcomes = await self.dispatch(key, items)
            if len(outcomes) != len(items):
                raise RuntimeError(
                    f"dispatch returned {len(outcomes)} outcomes "
                    f"for {len(items)} items"
                )
        except Exception as exc:
            if futures is None:
                raise
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return None
        if futures is None:
            return outcomes[0]
        for future, outcome in zip(futures, outcomes):
            if not future.done():
                future.set_result(outcome)
        return None


__all__ = ["MicroBatcher"]
