"""Named, versioned databases bound to long-lived sessions.

The service never constructs a :class:`~repro.session.Session` per request
-- the whole point of the session API is that the evaluation cache, the
interning tables and (for parallel sessions) the worker pool amortize
across requests.  The :class:`SessionRegistry` owns that mapping:

* **names** -- clients address databases by name (``"tpch"``), never by
  object identity;
* **versions** -- every successful ``apply_deletions`` /
  ``apply_insertions`` bumps the entry's monotonically increasing version
  number.  Responses carry the version they were computed against, so a
  client can tell pre- and post-mutation answers apart;
* **per-database read/write locks** -- solves and what-ifs take the read
  side (the session read paths are thread-safe, so any number run
  concurrently), ``apply_deletions`` / ``apply_insertions`` take the write
  side: a writer waits for every in-flight read to drain -- reads admitted
  before the write therefore complete against the prior version -- and
  blocks new reads until the mutation (and its cache migration) is done.
  The lock is write-preferring, so a steady read stream cannot starve a
  mutation;
* **LRU bound** -- at most ``capacity`` databases stay resident; inserting
  beyond it closes and evicts the least-recently-used entry
  (:meth:`Session.close` shuts down its caches and worker pool
  deterministically -- the satellite contract this registry relies on);
* **durability** (optional) -- with a :class:`~repro.storage.DatabaseStore`
  attached, registrations snapshot to disk, mutations write through to the
  append-only log *before* the client is acknowledged, LRU eviction
  compacts the evictee's state to disk first, and a missing name
  lazily rehydrates from disk (so an evicted or restarted database comes
  back at the exact version clients last saw, warm cache included).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional

from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.session import Session
from repro.storage import OP_DELETE, OP_INSERT, DatabaseStore, StorageError


class DuplicateDatabaseError(ValueError):
    """The database name is already registered (HTTP 409, not 400)."""


class ReadWriteLock:
    """A write-preferring readers/writer lock (threading-based).

    Used by the registry entries (solver threads block on it, so it cannot
    be an asyncio primitive) and by the concurrency contract tests, which
    replay the same serialize-writes-drain-reads discipline the service
    promises.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            # Write preference: new readers queue behind a waiting writer.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator["ReadWriteLock"]:
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator["ReadWriteLock"]:
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()


class RegisteredDatabase:
    """One registry entry: a named database, its session, version and lock."""

    __slots__ = ("name", "database", "session", "version", "lock", "created_at")

    def __init__(self, name: str, database: Database, session: Session) -> None:
        self.name = name
        self.database = database
        self.session = session
        self.version = 1
        self.lock = ReadWriteLock()
        self.created_at = time.time()

    def close(self) -> None:
        """Drain in-flight reads, then close the session (pool included)."""
        with self.lock.write():
            self.session.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisteredDatabase({self.name!r}, v{self.version})"


class SessionRegistry:
    """LRU-bounded mapping ``name -> RegisteredDatabase`` (thread-safe)."""

    def __init__(
        self,
        capacity: int = 8,
        *,
        engine: str = "columnar",
        backend: str = "auto",
        workers: int = 1,
        store: Optional[DatabaseStore] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"registry capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.engine = engine
        self.backend = backend
        self.workers = int(workers)
        self.store = store
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, RegisteredDatabase]" = OrderedDict()
        self._closed = False
        #: Entries closed by LRU overflow (scraped at ``/metrics``).
        #: Mutated under ``_lock``; reads are single int loads (atomic).
        self.evictions_total = 0
        #: Entries brought back from disk (evicted or from a prior process).
        self.rehydrations_total = 0

    # ------------------------------------------------------------------ #
    # CRUD
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        database: Database,
        *,
        replace: bool = False,
        session: Optional[Session] = None,
    ) -> RegisteredDatabase:
        """Bind ``database`` under ``name`` (evicting LRU entries if full).

        ``replace=False`` raises :class:`DuplicateDatabaseError` when the
        name is taken (HTTP 409); ``replace=True`` closes and supersedes the
        old entry.  A custom ``session`` may be supplied (tests); by
        default one is created with the registry's engine/backend/workers.

        With a store attached, re-registering a name that lives on disk but
        is not resident (evicted, or persisted by a previous process)
        **rehydrates** it at its durable version instead of silently
        resetting its mutation history -- the supplied ``database`` is
        ignored in that case.  ``replace=True`` genuinely replaces, wiping
        the durable state too.
        """
        if not name or "/" in name:
            raise ValueError(f"invalid database name {name!r}")
        if (
            self.store is not None
            and not replace
            and name not in self
            and self.store.exists(name)
        ):
            # An evicted (or pre-restart) database keeps its identity: the
            # durable version and mutation history win over a fresh bind.
            if session is not None:
                session.close()
            return self._rehydrate(name)
        owned = session is None
        if session is None:
            session = Session(
                database,
                engine=self.engine,
                backend=self.backend,
                workers=self.workers,
            )
        entry = RegisteredDatabase(name, database, session)
        superseded: List[RegisteredDatabase] = []
        evicted: List[RegisteredDatabase] = []
        with self._lock:
            if self._closed:
                if owned:  # never destroy a session the caller still owns
                    session.close()
                raise RuntimeError("registry is closed")
            old = self._entries.get(name)
            if old is not None and not replace:
                if owned:
                    session.close()
                raise DuplicateDatabaseError(
                    f"database {name!r} already registered"
                )
            if old is not None:
                # Superseding counts as a mutation: the version continues
                # past the old entry's, so (name, version) stays unambiguous
                # across the replacement (batch keys and client caches rely
                # on it).
                entry.version = old.version + 1
                superseded.append(old)
                del self._entries[name]
            self._entries[name] = entry
            while len(self._entries) > self.capacity:
                _lru_name, lru = self._entries.popitem(last=False)
                evicted.append(lru)
                self.evictions_total += 1
        # Close outside the registry lock: close() drains the entry's
        # in-flight readers, and those readers never touch the registry
        # lock while running, so this cannot deadlock -- but holding the
        # registry lock across a drain would stall every other endpoint.
        for stale in superseded:
            stale.close()
        for stale in evicted:
            self._flush_evicted(stale)
            stale.close()
        if self.store is not None:
            try:
                self.store.initialize(name, session, entry.version, replace=replace)
            except StorageError:
                # Registration could not be made durable: undo it so the
                # in-memory and on-disk views never disagree about whether
                # the name exists.
                with self._lock:
                    if self._entries.get(name) is entry:
                        del self._entries[name]
                entry.close()
                raise
        return entry

    def get(self, name: str) -> RegisteredDatabase:
        """The entry for ``name`` (refreshing its LRU position).

        A name that is not resident but has durable state lazily rehydrates
        from disk -- the restart path: a fresh process serves its first
        request for a persisted database by recovering it here.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                self._entries.move_to_end(name)
                return entry
            closed = self._closed
        if not closed and self.store is not None and self.store.exists(name):
            return self._rehydrate(name)
        raise KeyError(f"no database named {name!r}")

    def _rehydrate(self, name: str) -> RegisteredDatabase:
        """Recover ``name`` from the store and install it (LRU rules apply)."""
        assert self.store is not None
        recovered = self.store.load(
            name, engine=self.engine, backend=self.backend, workers=self.workers
        )
        entry = RegisteredDatabase(name, recovered.database, recovered.session)
        entry.version = recovered.version
        evicted: List[RegisteredDatabase] = []
        with self._lock:
            if self._closed:
                recovered.session.close()
                raise RuntimeError("registry is closed")
            existing = self._entries.get(name)
            if existing is not None:
                # A concurrent request rehydrated first; keep theirs.
                recovered.session.close()
                self._entries.move_to_end(name)
                return existing
            self._entries[name] = entry
            while len(self._entries) > self.capacity:
                _lru_name, lru = self._entries.popitem(last=False)
                evicted.append(lru)
                self.evictions_total += 1
            self.rehydrations_total += 1
        for stale in evicted:
            self._flush_evicted(stale)
            stale.close()
        return entry

    def _flush_evicted(self, stale: RegisteredDatabase) -> None:
        """Compact an evictee to disk so eviction never loses history.

        Best-effort on top of the write-through log: every acknowledged
        mutation is already durable, so a failed flush (degraded storage)
        only costs the cached-provenance warmth, not correctness.
        """
        if self.store is None:
            return
        try:
            with stale.lock.write():
                self.store.flush(stale.name, stale.session, stale.version)
        except StorageError:
            pass

    def drop(self, name: str) -> None:
        """Unregister and close one entry, durable state included.

        ``KeyError`` when the name neither is resident nor has durable
        state.
        """
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None and not (
            self.store is not None and self.store.exists(name)
        ):
            raise KeyError(f"no database named {name!r}")
        if entry is not None:
            entry.close()
        if self.store is not None:
            self.store.remove(name)

    def entries(self) -> List[RegisteredDatabase]:
        """Every resident entry, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # ------------------------------------------------------------------ #
    # Mutation bookkeeping
    # ------------------------------------------------------------------ #
    def apply_deletions(
        self, name: str, refs: Iterable[TupleRef]
    ) -> "tuple[int, int]":
        """Delete ``refs`` from the named database under its write lock.

        Returns ``(removed count, resulting version)``.  The version bumps
        only when tuples were actually removed -- a no-op deletion leaves
        cached results (and the version clients cache against) intact.

        With a store attached the batch is appended to the mutation log
        *before* returning: a :class:`~repro.storage.StorageError` here
        means the client was never acknowledged, so replaying (or retrying)
        the batch is safe.
        """
        entry = self.get(name)
        ref_list = list(refs)
        with entry.lock.write():
            if entry.session.closed:
                # Evicted while we waited for the write lock: to the caller
                # the database is simply gone.
                raise KeyError(f"no database named {name!r}")
            removed = entry.session.apply_deletions(ref_list)
            if removed:
                entry.version += 1
                if self.store is not None:
                    self.store.record_mutation(
                        name, entry.session, OP_DELETE, ref_list, entry.version
                    )
            return removed, entry.version

    def apply_insertions(
        self, name: str, refs: Iterable[TupleRef]
    ) -> "tuple[int, int]":
        """Insert ``refs`` into the named database under its write lock.

        Returns ``(added count, resulting version)``.  The version bumps
        only when tuples actually landed -- a no-op batch (duplicates,
        unknown relations) leaves cached results (and the version clients
        cache against) intact.

        Durability mirrors :meth:`apply_deletions`: log append before the
        acknowledgement, failure means the batch is retry-safe.
        """
        entry = self.get(name)
        ref_list = list(refs)
        with entry.lock.write():
            if entry.session.closed:
                # Evicted while we waited for the write lock: to the caller
                # the database is simply gone.
                raise KeyError(f"no database named {name!r}")
            added = entry.session.apply_insertions(ref_list)
            if added:
                entry.version += 1
                if self.store is not None:
                    self.store.record_mutation(
                        name, entry.session, OP_INSERT, ref_list, entry.version
                    )
            return added, entry.version

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every session and refuse further registrations.

        With a store attached each entry is compacted to disk first (best
        effort -- the write-through log already holds every acknowledged
        mutation), so a graceful shutdown restarts with warm snapshots.
        """
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._flush_evicted(entry)
            entry.close()


__all__ = [
    "DuplicateDatabaseError",
    "ReadWriteLock",
    "RegisteredDatabase",
    "SessionRegistry",
]
