"""Service counters and the ``/metrics`` Prometheus text exposition.

One :class:`ServiceMetrics` per service.  Everything is guarded by one
lock: updates come from the event loop *and* from solver threads, and a
metrics scrape must never observe a torn histogram.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: Upper bucket bounds (milliseconds) of the request latency histogram.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

_PREFIX = "repro_service"


class ServiceMetrics:
    """Thread-safe counters/gauges/histograms for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (endpoint, status code) -> completed request count.
        self.requests_total: Dict[Tuple[str, int], int] = defaultdict(int)
        self.in_flight = 0
        self.rejected_total = 0
        self.deadline_missed_total = 0
        self.batches_total = 0
        self.batched_requests_total = 0
        self.singleton_dispatch_total = 0
        self.solves_total = 0
        self.deletions_applied_total = 0
        self.insertions_applied_total = 0
        #: endpoint -> (count, sum_ms, cumulative bucket counts).
        self._latency: Dict[str, Tuple[int, float, List[int]]] = {}

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def request_finished(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        with self._lock:
            self.in_flight -= 1
            self.requests_total[(endpoint, status)] += 1
            count, total, buckets = self._latency.get(
                endpoint, (0, 0.0, [0] * len(LATENCY_BUCKETS_MS))
            )
            buckets = list(buckets)
            for i, bound in enumerate(LATENCY_BUCKETS_MS):
                if elapsed_ms <= bound:
                    buckets[i] += 1
            self._latency[endpoint] = (count + 1, total + elapsed_ms, buckets)

    def rejected(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def deadline_missed(self) -> None:
        with self._lock:
            self.deadline_missed_total += 1

    def batch_dispatched(self, size: int) -> None:
        """A micro-batch of ``size`` coalesced requests hit ``solve_many``."""
        with self._lock:
            if size > 1:
                self.batches_total += 1
                self.batched_requests_total += size
            else:
                self.singleton_dispatch_total += 1
            self.solves_total += size

    def solve_dispatched(self) -> None:
        """One request bypassed the batcher (``batch: false`` or no batcher)."""
        with self._lock:
            self.singleton_dispatch_total += 1
            self.solves_total += 1

    def deletions_applied(self, removed: int) -> None:
        with self._lock:
            self.deletions_applied_total += removed

    def insertions_applied(self, added: int) -> None:
        with self._lock:
            self.insertions_applied_total += added

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A plain-dict view (``/healthz``, tests, the load harness)."""
        with self._lock:
            return {
                "requests_total": sum(self.requests_total.values()),
                "in_flight": self.in_flight,
                "rejected_total": self.rejected_total,
                "deadline_missed_total": self.deadline_missed_total,
                "batches_total": self.batches_total,
                "batched_requests_total": self.batched_requests_total,
                "singleton_dispatch_total": self.singleton_dispatch_total,
                "solves_total": self.solves_total,
                "deletions_applied_total": self.deletions_applied_total,
                "insertions_applied_total": self.insertions_applied_total,
            }

    def render(self, extra_gauges: Optional[Dict[str, float]] = None) -> str:
        """The Prometheus text exposition served at ``/metrics``."""
        with self._lock:
            lines: List[str] = []

            def counter(
                name: str, value: object, help_text: str, labels: str = ""
            ) -> None:
                lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
                lines.append(f"# TYPE {_PREFIX}_{name} counter")
                lines.append(f"{_PREFIX}_{name}{labels} {value}")

            lines.append(f"# HELP {_PREFIX}_requests_total Completed HTTP requests.")
            lines.append(f"# TYPE {_PREFIX}_requests_total counter")
            for (endpoint, status), count in sorted(self.requests_total.items()):
                lines.append(
                    f'{_PREFIX}_requests_total{{endpoint="{endpoint}",'
                    f'status="{status}"}} {count}'
                )
            lines.append(f"# HELP {_PREFIX}_in_flight Requests currently being served.")
            lines.append(f"# TYPE {_PREFIX}_in_flight gauge")
            lines.append(f"{_PREFIX}_in_flight {self.in_flight}")
            for name, value in sorted((extra_gauges or {}).items()):
                lines.append(f"# TYPE {_PREFIX}_{name} gauge")
                lines.append(f"{_PREFIX}_{name} {value}")
            counter("rejected_total", self.rejected_total,
                    "Requests shed by admission control (HTTP 429).")
            counter("deadline_missed_total", self.deadline_missed_total,
                    "Requests that expired before or during dispatch (HTTP 504).")
            counter("batches_total", self.batches_total,
                    "Coalesced solve_many dispatches (batch size > 1).")
            counter("batched_requests_total", self.batched_requests_total,
                    "Solve requests served through a coalesced batch.")
            counter("singleton_dispatch_total", self.singleton_dispatch_total,
                    "Solve requests dispatched individually.")
            counter("solves_total", self.solves_total, "Solve requests executed.")
            counter("deletions_applied_total", self.deletions_applied_total,
                    "Input tuples removed by /v1/apply_deletions.")
            counter("insertions_applied_total", self.insertions_applied_total,
                    "Input tuples added by /v1/apply_insertions.")
            base = f"{_PREFIX}_request_latency_ms"
            if self._latency:
                # One HELP/TYPE per metric name (the text format forbids
                # repeating them per label set).
                lines.append(f"# HELP {base} Request latency per endpoint.")
                lines.append(f"# TYPE {base} histogram")
            for endpoint, (count, total, buckets) in sorted(self._latency.items()):
                for bound, cumulative in zip(LATENCY_BUCKETS_MS, buckets):
                    lines.append(
                        f'{base}_bucket{{endpoint="{endpoint}",le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f'{base}_bucket{{endpoint="{endpoint}",le="+Inf"}} {count}'
                )
                lines.append(f'{base}_sum{{endpoint="{endpoint}"}} {round(total, 3)}')
                lines.append(f'{base}_count{{endpoint="{endpoint}"}} {count}')
            return "\n".join(lines) + "\n"


__all__ = ["LATENCY_BUCKETS_MS", "ServiceMetrics"]
