"""Service counters and the ``/metrics`` Prometheus text exposition.

One :class:`ServiceMetrics` per service.  Everything is guarded by one
lock: updates come from the event loop *and* from solver threads, and a
metrics scrape must never observe a torn histogram.

The exposition follows the Prometheus text format (version 0.0.4):
label values are escaped (backslash, double quote, newline), every
histogram carries cumulative buckets ending in ``+Inf`` plus ``_sum`` and
``_count`` series, and each metric name gets exactly one ``# HELP`` /
``# TYPE`` pair regardless of how many label sets it spans.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: Upper bucket bounds (milliseconds) of the request latency histogram.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

_PREFIX = "repro_service"

#: HELP text for the gauges the service passes into :meth:`render`.
_GAUGE_HELP = {
    "pending_requests": "Solve-class requests admitted and not yet finished.",
    "databases_resident": "Databases currently resident in the registry LRU.",
    "databases_capacity": "Registry LRU capacity (resident database bound).",
    "batcher_queue_depth": "Solve requests waiting in open micro-batch windows.",
}

#: HELP text for the counters the service passes into :meth:`render`.
_COUNTER_HELP = {
    "registry_evictions_total": "Databases evicted by registry LRU overflow.",
}

#: HELP text for the per-database labeled gauges (operator statistics).
_LABELED_GAUGE_HELP = {
    "operator_join_steps": "Join steps executed by the last observed solve.",
    "operator_witnesses": "Witnesses produced by the last observed solve.",
    "operator_mispredicted_steps":
        "Join steps whose cardinality estimate missed by >= the "
        "misprediction ratio in the last observed solve.",
    "operator_heavy_hitter_steps":
        "Join steps with a heavy-hitter build-side key distribution in the "
        "last observed solve.",
    "operator_max_expansion":
        "Largest per-step match expansion factor in the last observed solve.",
}

#: One latency histogram: (observation count, sum of ms, cumulative buckets).
_Histogram = Tuple[int, float, List[int]]


def _escape_label(value: object) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _observe(store: Dict[str, _Histogram], key: str, elapsed_ms: float) -> None:
    """Record one observation into the histogram stored under ``key``."""
    count, total, buckets = store.get(
        key, (0, 0.0, [0] * len(LATENCY_BUCKETS_MS))
    )
    buckets = list(buckets)
    for i, bound in enumerate(LATENCY_BUCKETS_MS):
        if elapsed_ms <= bound:
            buckets[i] += 1
    store[key] = (count + 1, total + elapsed_ms, buckets)


class ServiceMetrics:
    """Thread-safe counters/gauges/histograms for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (endpoint, status code) -> completed request count.
        self.requests_total: Dict[Tuple[str, int], int] = defaultdict(int)
        self.in_flight = 0
        self.rejected_total = 0
        self.deadline_missed_total = 0
        self.batches_total = 0
        self.batched_requests_total = 0
        self.singleton_dispatch_total = 0
        self.solves_total = 0
        self.deletions_applied_total = 0
        self.insertions_applied_total = 0
        self.slow_requests_total = 0
        #: endpoint -> (count, sum_ms, cumulative bucket counts).
        self._latency: Dict[str, _Histogram] = {}
        #: span/stage name -> (count, sum_ms, cumulative bucket counts).
        self._stage_latency: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def request_finished(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        with self._lock:
            self.in_flight -= 1
            self.requests_total[(endpoint, status)] += 1
            _observe(self._latency, endpoint, elapsed_ms)

    def stage_observed(self, stage: str, elapsed_ms: float) -> None:
        """One traced span completed: feed the per-stage latency histogram."""
        with self._lock:
            _observe(self._stage_latency, stage, elapsed_ms)

    def rejected(self) -> None:
        with self._lock:
            self.rejected_total += 1

    def deadline_missed(self) -> None:
        with self._lock:
            self.deadline_missed_total += 1

    def slow_request(self) -> None:
        """One request crossed the slow-query threshold (and was logged)."""
        with self._lock:
            self.slow_requests_total += 1

    def batch_dispatched(self, size: int) -> None:
        """A micro-batch of ``size`` coalesced requests hit ``solve_many``."""
        with self._lock:
            if size > 1:
                self.batches_total += 1
                self.batched_requests_total += size
            else:
                self.singleton_dispatch_total += 1
            self.solves_total += size

    def solve_dispatched(self) -> None:
        """One request bypassed the batcher (``batch: false`` or no batcher)."""
        with self._lock:
            self.singleton_dispatch_total += 1
            self.solves_total += 1

    def deletions_applied(self, removed: int) -> None:
        with self._lock:
            self.deletions_applied_total += removed

    def insertions_applied(self, added: int) -> None:
        with self._lock:
            self.insertions_applied_total += added

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A plain-dict view (``/healthz``, tests, the load harness)."""
        with self._lock:
            return {
                "requests_total": sum(self.requests_total.values()),
                "in_flight": self.in_flight,
                "rejected_total": self.rejected_total,
                "deadline_missed_total": self.deadline_missed_total,
                "batches_total": self.batches_total,
                "batched_requests_total": self.batched_requests_total,
                "singleton_dispatch_total": self.singleton_dispatch_total,
                "solves_total": self.solves_total,
                "deletions_applied_total": self.deletions_applied_total,
                "insertions_applied_total": self.insertions_applied_total,
                "slow_requests_total": self.slow_requests_total,
            }

    def render(
        self,
        extra_gauges: Optional[Dict[str, float]] = None,
        extra_counters: Optional[Dict[str, int]] = None,
        labeled_gauges: Optional[Dict[str, Dict[str, float]]] = None,
        label: str = "database",
    ) -> str:
        """The Prometheus text exposition served at ``/metrics``.

        ``labeled_gauges`` maps metric name to ``{label value: gauge
        value}`` (one HELP/TYPE pair per metric, one series per label
        value).  The *caller* is responsible for bounding the label
        cardinality -- the service prunes to registry-resident database
        names before rendering (see docs/INVARIANTS.md).
        """
        with self._lock:
            lines: List[str] = []

            def counter(
                name: str, value: object, help_text: str, labels: str = ""
            ) -> None:
                lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
                lines.append(f"# TYPE {_PREFIX}_{name} counter")
                lines.append(f"{_PREFIX}_{name}{labels} {value}")

            def histogram(base: str, help_text: str, label: str,
                          store: Dict[str, _Histogram]) -> None:
                if not store:
                    return
                # One HELP/TYPE per metric name (the text format forbids
                # repeating them per label set).
                lines.append(f"# HELP {base} {help_text}")
                lines.append(f"# TYPE {base} histogram")
                for key, (count, total, buckets) in sorted(store.items()):
                    escaped = _escape_label(key)
                    for bound, cumulative in zip(LATENCY_BUCKETS_MS, buckets):
                        lines.append(
                            f'{base}_bucket{{{label}="{escaped}",le="{bound}"}}'
                            f" {cumulative}"
                        )
                    lines.append(
                        f'{base}_bucket{{{label}="{escaped}",le="+Inf"}} {count}'
                    )
                    lines.append(f'{base}_sum{{{label}="{escaped}"}} {round(total, 3)}')
                    lines.append(f'{base}_count{{{label}="{escaped}"}} {count}')

            lines.append(f"# HELP {_PREFIX}_requests_total Completed HTTP requests.")
            lines.append(f"# TYPE {_PREFIX}_requests_total counter")
            for (endpoint, status), count in sorted(self.requests_total.items()):
                lines.append(
                    f'{_PREFIX}_requests_total{{endpoint="{_escape_label(endpoint)}",'
                    f'status="{status}"}} {count}'
                )
            lines.append(f"# HELP {_PREFIX}_in_flight Requests currently being served.")
            lines.append(f"# TYPE {_PREFIX}_in_flight gauge")
            lines.append(f"{_PREFIX}_in_flight {self.in_flight}")
            for name, value in sorted((extra_gauges or {}).items()):
                help_text = _GAUGE_HELP.get(name, f"Gauge {name}.")
                lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
                lines.append(f"# TYPE {_PREFIX}_{name} gauge")
                lines.append(f"{_PREFIX}_{name} {value}")
            for name, series in sorted((labeled_gauges or {}).items()):
                if not series:
                    continue
                help_text = _LABELED_GAUGE_HELP.get(name, f"Gauge {name}.")
                lines.append(f"# HELP {_PREFIX}_{name} {help_text}")
                lines.append(f"# TYPE {_PREFIX}_{name} gauge")
                for label_value, value in sorted(series.items()):
                    lines.append(
                        f'{_PREFIX}_{name}{{{label}="{_escape_label(label_value)}"}}'
                        f" {value}"
                    )
            counter("rejected_total", self.rejected_total,
                    "Requests shed by admission control (HTTP 429).")
            counter("deadline_missed_total", self.deadline_missed_total,
                    "Requests that expired before or during dispatch (HTTP 504).")
            counter("batches_total", self.batches_total,
                    "Coalesced solve_many dispatches (batch size > 1).")
            counter("batched_requests_total", self.batched_requests_total,
                    "Solve requests served through a coalesced batch.")
            counter("singleton_dispatch_total", self.singleton_dispatch_total,
                    "Solve requests dispatched individually.")
            counter("solves_total", self.solves_total, "Solve requests executed.")
            counter("deletions_applied_total", self.deletions_applied_total,
                    "Input tuples removed by /v1/apply_deletions.")
            counter("insertions_applied_total", self.insertions_applied_total,
                    "Input tuples added by /v1/apply_insertions.")
            counter("slow_requests_total", self.slow_requests_total,
                    "Requests recorded in the slow-query log.")
            for name, value in sorted((extra_counters or {}).items()):
                counter(name, value, _COUNTER_HELP.get(name, f"Counter {name}."))
            histogram(f"{_PREFIX}_request_latency_ms",
                      "Request latency per endpoint.", "endpoint", self._latency)
            histogram(f"{_PREFIX}_stage_latency_ms",
                      "Traced span duration per stage (solver threads).",
                      "stage", self._stage_latency)
            return "\n".join(lines) + "\n"


__all__ = ["LATENCY_BUCKETS_MS", "ServiceMetrics"]
