"""Uniform random instances for the optimisation ablations (Section 8.5).

Two queries are used:

* ``Q7(A, B, C, D, E, F, G) :- R1(A, B, C), R2(A, B, C, D, E),
  R3(A, B, C, D, G), R4(A, B, C, F)`` -- the attributes ``A, B, C`` are
  universal and ``R1`` is the singleton relation, so the query exercises the
  Universe / Singleton machinery (Figure 28);
* ``Q8(A1, B1, ..., B3) :- R11(A1), R12(A1, B1), R21(A2), R22(A2, B2),
  R31(A3), R32(A3, B3)`` -- three disconnected easy subqueries, exercising
  the Decompose strategies (Figure 29).

The paper generates each tuple uniformly at random with values between 1 and
100; these helpers do the same (deterministically, given a seed).
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.data.relation import Relation


def generate_q7_instance(
    tuples_per_relation: int = 500,
    domain: int = 100,
    seed: int = 28,
) -> Database:
    """Random instance for Q7 (Figure 28): four wide relations sharing A, B, C."""
    rng = random.Random(seed)
    schemas = {
        "R1": ("A", "B", "C"),
        "R2": ("A", "B", "C", "D", "E"),
        "R3": ("A", "B", "C", "D", "G"),
        "R4": ("A", "B", "C", "F"),
    }
    # Share a common pool of (A, B, C) prefixes so the join is non-trivial.
    prefixes = [
        (rng.randint(1, domain), rng.randint(1, domain), rng.randint(1, domain))
        for _ in range(max(2, tuples_per_relation // 5))
    ]
    relations = []
    for name, attributes in schemas.items():
        relation = Relation(name, attributes)
        guard = 0
        while len(relation) < tuples_per_relation and guard < 50 * tuples_per_relation:
            guard += 1
            prefix = rng.choice(prefixes)
            suffix = tuple(rng.randint(1, domain) for _ in range(len(attributes) - 3))
            relation.insert(prefix + suffix)
        relations.append(relation)
    return Database(relations)


def generate_q8_instance(
    unary_tuples: int = 25,
    binary_tuples: int = 50,
    domain: int = 100,
    seed: int = 29,
) -> Database:
    """Random instance for Q8 (Figure 29): three disconnected easy subqueries.

    Each subquery ``i`` is ``R_i1(A_i), R_i2(A_i, B_i)`` with ``unary_tuples``
    values in the unary relation and ``binary_tuples`` edges in the binary
    one (the paper uses 25 and 50).
    """
    rng = random.Random(seed)
    relations = []
    for index in (1, 2, 3):
        a_attr, b_attr = f"A{index}", f"B{index}"
        values = rng.sample(range(1, domain + 1), min(unary_tuples, domain))
        unary = Relation(f"R{index}1", (a_attr,), [(v,) for v in values])
        binary = Relation(f"R{index}2", (a_attr, b_attr))
        guard = 0
        while len(binary) < binary_tuples and guard < 50 * binary_tuples:
            guard += 1
            binary.insert((rng.choice(values), rng.randint(1, domain)))
        relations.extend([unary, binary])
    return Database(relations)
