"""Workload generators and the query catalog of the experimental section.

The paper evaluates on TPC-H, a SNAP Facebook ego-network, and synthetic
Zipfian data.  Neither external dataset can be shipped here, so this
subpackage provides deterministic synthetic generators with the same schemas
and the same distributional knobs (see DESIGN.md, "Substitutions"):

* :mod:`repro.workloads.tpch` -- ``Supplier(NK, SK)``, ``PartSupp(SK, PK)``,
  ``LineItem(OK, PK)`` with skewed foreign-key fan-out (queries Q1, σθQ1);
* :mod:`repro.workloads.snap` -- a clustered "social circles" ego-network
  whose bidirected edges are partitioned into ``R1..R4`` by rank modulo 4
  (queries Q2..Q5);
* :mod:`repro.workloads.zipf` -- ``R1(A), R2(A, B), R3(B)`` instances whose
  ``A``-degrees follow a Zipf(α) distribution (queries Qpath / Q6,
  Figures 16--27);
* :mod:`repro.workloads.synthetic` -- uniform random instances for the
  optimisation ablations (queries Q7, Q8, Figures 28--29);
* :mod:`repro.workloads.queries` -- every named query used in the paper
  (QWL, QPossible, Q3path, Q1..Q8, the core queries).
"""

from repro.workloads.queries import (
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    Q6,
    Q7,
    Q8,
    Q3PATH,
    QPOSSIBLE,
    QWL,
    QUERY_CATALOG,
)
from repro.workloads.tpch import generate_tpch
from repro.workloads.snap import generate_ego_network
from repro.workloads.zipf import generate_zipf_path
from repro.workloads.synthetic import generate_q7_instance, generate_q8_instance

__all__ = [
    "QWL",
    "QPOSSIBLE",
    "Q3PATH",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "Q6",
    "Q7",
    "Q8",
    "QUERY_CATALOG",
    "generate_tpch",
    "generate_ego_network",
    "generate_zipf_path",
    "generate_q7_instance",
    "generate_q8_instance",
]
