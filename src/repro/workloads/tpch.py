"""A synthetic TPC-H-like workload (Section 8.1 / 8.2).

The paper uses the TPC-H relations ``Supplier``, ``PartSupp`` and
``LineItem`` and the query

    ``Q1(NK, SK, PK, OK) :- Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)``

together with the selection ``PK = 13370``.  The actual dbgen data cannot be
downloaded here, so :func:`generate_tpch` produces a deterministic instance
with the same three-relation shape and comparable join characteristics:

* suppliers get a nation key drawn uniformly from a small nation pool;
* each supplier offers several parts (``PartSupp``), with parts drawn from a
  mildly skewed distribution so some parts have many suppliers (this is what
  makes the query result large relative to the input, like in TPC-H);
* line items reference existing parts, again with skew, and fresh order keys.

The sizes are controlled by ``total_tuples``, split roughly 1:3:6 across the
three relations (mirroring the relative sizes of the TPC-H tables used in the
paper's plots).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.data.database import Database
from repro.data.relation import Relation

#: The part key used for the paper's selection experiments (σ[PK = 13370]).
SELECTED_PART_KEY = 13370


@dataclass(frozen=True)
class TpchConfig:
    """Generation knobs for the synthetic TPC-H-like instance."""

    total_tuples: int = 1000
    nations: int = 25
    #: Zipf-ish skew of part popularity (0 = uniform).
    part_skew: float = 0.6
    #: Fraction of distinct parts relative to the PartSupp size.
    part_ratio: float = 0.2
    seed: int = 7

    def split(self) -> Tuple[int, int, int]:
        """Sizes of (Supplier, PartSupp, LineItem), summing to ``total_tuples``."""
        suppliers = max(1, self.total_tuples // 10)
        partsupp = max(1, (3 * self.total_tuples) // 10)
        lineitem = max(1, self.total_tuples - suppliers - partsupp)
        return suppliers, partsupp, lineitem


def _skewed_choice(rng: random.Random, population: int, skew: float) -> int:
    """Pick an index in ``[0, population)`` with Zipf-like skew."""
    if skew <= 0:
        return rng.randrange(population)
    # Inverse-CDF sampling of a truncated Pareto-ish distribution keeps the
    # generator dependency-free and fast.
    u = rng.random()
    index = int(population * (u ** (1.0 + skew)))
    return min(index, population - 1)


def generate_tpch(
    total_tuples: int = 1000,
    seed: int = 7,
    config: TpchConfig | None = None,
) -> Database:
    """Generate a synthetic TPC-H-like database.

    Parameters
    ----------
    total_tuples:
        Approximate total number of input tuples across the three relations.
    seed:
        Random seed; generation is fully deterministic given the seed.
    config:
        Full configuration (overrides ``total_tuples``/``seed`` when given).

    Returns
    -------
    Database
        Relations ``Supplier(NK, SK)``, ``PartSupp(SK, PK)``,
        ``LineItem(OK, PK)``.  The selected part key
        :data:`SELECTED_PART_KEY` is guaranteed to exist and to join with at
        least one supplier and one line item.
    """
    cfg = config or TpchConfig(total_tuples=total_tuples, seed=seed)
    rng = random.Random(cfg.seed)
    n_supplier, n_partsupp, n_lineitem = cfg.split()

    supplier = Relation("Supplier", ("NK", "SK"))
    partsupp = Relation("PartSupp", ("SK", "PK"))
    lineitem = Relation("LineItem", ("OK", "PK"))

    supplier_keys = list(range(1, n_supplier + 1))
    for sk in supplier_keys:
        supplier.insert((rng.randrange(cfg.nations), sk))

    n_parts = max(1, int(n_partsupp * cfg.part_ratio))
    part_keys = [SELECTED_PART_KEY + i for i in range(n_parts)]
    # The sampling loop below inserts into a *set*; cap the target by the
    # number of distinct (SK, PK) pairs or tiny instances never terminate.
    n_partsupp = min(n_partsupp, len(supplier_keys) * len(part_keys))
    while len(partsupp) < n_partsupp:
        sk = supplier_keys[_skewed_choice(rng, len(supplier_keys), cfg.part_skew)]
        pk = part_keys[_skewed_choice(rng, len(part_keys), cfg.part_skew)]
        partsupp.insert((sk, pk))

    # Make sure the selected part joins on both sides.
    partsupp.insert((supplier_keys[0], SELECTED_PART_KEY))

    order_key = 0
    while len(lineitem) < n_lineitem:
        order_key += 1
        pk = part_keys[_skewed_choice(rng, len(part_keys), cfg.part_skew)]
        lineitem.insert((order_key, pk))
    lineitem.insert((order_key + 1, SELECTED_PART_KEY))

    return Database([supplier, partsupp, lineitem])
