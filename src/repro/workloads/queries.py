"""The query catalog of the paper.

Every named query appearing in the paper's examples (Section 1) and in the
experimental section (Section 8) is defined here so that examples, tests and
benchmarks can refer to them by name.

===========  ==================================================================
Name         Definition
===========  ==================================================================
``QWL``      ``QWL(S, C) :- Major(S, M), Req(M, C), NoSeat(C)`` (Example 1)
``QPOSSIBLE````QPossible(C) :- Teaches(P, C), NotOnLeave(P)`` (Example 2)
``Q3PATH``   ``Q3path(A, B, C, D) :- R1(A, B), R2(B, C), R3(C, D)`` (Example 3)
``Q1``       TPC-H join ``Q1(NK, SK, PK, OK)`` (Section 8.1, NP-hard)
``Q2``       length-3 path over the ego network (NP-hard)
``Q3``       triangle over the ego network (NP-hard)
``Q4``       pair of length-2 connections, disconnected query (NP-hard parts)
``Q5``       common-friend star query (NP-hard)
``Q6``       ``Q6(A, B) :- R1(A), R2(A, B)`` singleton query (poly-time)
``QPATH_EXP````Qpath(A, B) :- R1(A), R2(A, B), R3(B)`` (NP-hard, Figures 16-19)
``Q7``       singleton/universal-attribute ablation query (Figure 28)
``Q8``       disconnected decomposition ablation query (Figure 29)
===========  ==================================================================
"""

from __future__ import annotations

from typing import Dict

from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query

# --------------------------------------------------------------------------- #
# Motivating examples (Section 1)
# --------------------------------------------------------------------------- #
QWL = parse_query("QWL(S, C) :- Major(S, M), Req(M, C), NoSeat(C)")
QPOSSIBLE = parse_query("QPossible(C) :- Teaches(P, C), NotOnLeave(P)")
Q3PATH = parse_query("Q3path(A, B, C, D) :- R1(A, B), R2(B, C), R3(C, D)")

# --------------------------------------------------------------------------- #
# TPC-H query (Section 8.1): Q1 is a full CQ over the three-relation schema.
# The selection σ[PK = const] makes it poly-time (Lemma 12); without the
# selection it is NP-hard.
# --------------------------------------------------------------------------- #
Q1 = parse_query("Q1(NK, SK, PK, OK) :- Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)")

# --------------------------------------------------------------------------- #
# SNAP ego-network queries (Section 8.1).
# --------------------------------------------------------------------------- #
Q2 = parse_query("Q2(A, B, C, D) :- R1(A, B), R2(B, C), R3(C, D)")
Q3 = parse_query("Q3(A, B, C) :- R1(A, B), R2(B, C), R3(C, A)")
Q4 = parse_query("Q4(A, C, E, G) :- R1(A, B), R2(B, C), R3(E, F), R4(F, G)")
Q5 = parse_query("Q5(A, B, C) :- R1(A, E), R2(B, E), R3(C, E)")

# --------------------------------------------------------------------------- #
# Synthetic data-distribution queries (Section 8.4).
# --------------------------------------------------------------------------- #
Q6 = parse_query("Q6(A, B) :- R1(A), R2(A, B)")
QPATH_EXP = parse_query("Qpath(A, B) :- R1(A), R2(A, B), R3(B)")

# --------------------------------------------------------------------------- #
# Optimisation ablation queries (Section 8.5).
# --------------------------------------------------------------------------- #
Q7 = parse_query(
    "Q7(A, B, C, D, E, F, G) :- "
    "R1(A, B, C), R2(A, B, C, D, E), R3(A, B, C, D, G), R4(A, B, C, F)"
)
Q8 = parse_query(
    "Q8(A1, B1, A2, B2, A3, B3) :- "
    "R11(A1), R12(A1, B1), R21(A2), R22(A2, B2), R31(A3), R32(A3, B3)"
)

#: Every named query, keyed by the name used in the paper / in reports.
QUERY_CATALOG: Dict[str, ConjunctiveQuery] = {
    "QWL": QWL,
    "QPossible": QPOSSIBLE,
    "Q3path": Q3PATH,
    "Q1": Q1,
    "Q2": Q2,
    "Q3": Q3,
    "Q4": Q4,
    "Q5": Q5,
    "Q6": Q6,
    "Qpath": QPATH_EXP,
    "Q7": Q7,
    "Q8": Q8,
}
