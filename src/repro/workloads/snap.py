"""A synthetic SNAP-like ego network (Section 8.1 / 8.3).

The paper evaluates Q2--Q5 on the ego network of Facebook user 414 from the
SNAP collection (7 circles, 150 nodes, 3386 directed edges after
bidirection), with the edges distributed round-robin into four relations
``R1(A, B) .. R4(A, B)`` by ``rank mod 4``.

The real dataset is not redistributable here, so :func:`generate_ego_network`
builds a synthetic ego network with the same macroscopic structure:

* an *ego* node connected to every other node (that is what makes it an ego
  network);
* the remaining nodes are grouped into a handful of *circles* (social
  circles); nodes within a circle are densely connected, nodes across
  circles sparsely;
* every edge is inserted in both directions, exactly as in the paper's
  pre-processing;
* edges are ranked deterministically and assigned to ``R1..R4`` by
  ``rank mod 4``.

The defaults (150 nodes, 7 circles, in-circle probability tuned to land near
~3.4k directed edges) match the scale of ego network 414.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation


@dataclass(frozen=True)
class EgoNetworkConfig:
    """Generation knobs for the synthetic ego network."""

    nodes: int = 150
    circles: int = 7
    in_circle_probability: float = 0.85
    cross_circle_probability: float = 0.03
    relations: int = 4
    seed: int = 414


def _circle_of(node: int, config: EgoNetworkConfig) -> int:
    """Deterministic circle assignment (node 0 is the ego, unaffiliated)."""
    return node % config.circles


def generate_ego_edges(config: EgoNetworkConfig) -> List[Tuple[int, int]]:
    """Generate the *directed* edge list of the synthetic ego network.

    Edges come out sorted and deduplicated; both directions of every
    undirected edge are present.
    """
    rng = random.Random(config.seed)
    undirected: set = set()
    ego = 0
    for node in range(1, config.nodes):
        undirected.add((ego, node))
    for left in range(1, config.nodes):
        for right in range(left + 1, config.nodes):
            same_circle = _circle_of(left, config) == _circle_of(right, config)
            probability = (
                config.in_circle_probability
                if same_circle
                else config.cross_circle_probability
            )
            if rng.random() < probability:
                undirected.add((left, right))
    directed = set()
    for left, right in undirected:
        directed.add((left, right))
        directed.add((right, left))
    return sorted(directed)


def generate_ego_network(
    config: EgoNetworkConfig | None = None,
    nodes: int | None = None,
    seed: int | None = None,
) -> Database:
    """Generate the partitioned ego-network database used by Q2--Q5.

    Returns a database with relations ``R1(A, B) .. R4(A, B)`` (or however
    many ``config.relations`` requests), where directed edge number ``i`` (in
    sorted order) is stored in relation ``R{(i mod r) + 1}``, mirroring the
    paper's "rank mod 4" partitioning.
    """
    cfg = config or EgoNetworkConfig()
    if nodes is not None or seed is not None:
        cfg = EgoNetworkConfig(
            nodes=nodes if nodes is not None else cfg.nodes,
            circles=cfg.circles,
            in_circle_probability=cfg.in_circle_probability,
            cross_circle_probability=cfg.cross_circle_probability,
            relations=cfg.relations,
            seed=seed if seed is not None else cfg.seed,
        )
    edges = generate_ego_edges(cfg)
    relations = [
        Relation(f"R{index + 1}", ("A", "B")) for index in range(cfg.relations)
    ]
    for rank, (left, right) in enumerate(edges):
        relations[rank % cfg.relations].insert((left, right))
    return Database(relations)


def edge_count(database: Database, relation_names: Sequence[str] = ("R1", "R2", "R3", "R4")) -> int:
    """Total number of directed edges stored across the given relations."""
    return sum(len(database.relation(name)) for name in relation_names if name in database)
