"""Zipfian synthetic data for the data-distribution experiments (Section 8.4).

The paper studies the singleton query ``Q6(A, B) :- R1(A), R2(A, B)`` and the
NP-hard ``Qpath(A, B) :- R1(A), R2(A, B), R3(B)`` on instances where the
degree of each ``A``-value in ``R2(A, B)`` follows a Zipf(α) distribution
(α = 0 is uniform; larger α is more skewed) while the ``B``-degrees stay
uniform.  The number of distinct values in ``A`` and ``B`` is 20% of the
input size.

:func:`generate_zipf_path` reproduces that setup.  The same database serves
both queries -- ``Q6`` simply ignores ``R3``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.data.database import Database
from repro.data.relation import Relation


@dataclass(frozen=True)
class ZipfConfig:
    """Generation knobs for the Zipfian path instance."""

    #: Number of tuples in R2(A, B); R1 and R3 hold the distinct values.
    r2_tuples: int = 1000
    #: Zipf exponent controlling the skew of A-degrees (0 = uniform).
    alpha: float = 0.0
    #: Distinct values in A (and in B) as a fraction of ``r2_tuples``.
    distinct_ratio: float = 0.2
    seed: int = 13


def zipf_weights(count: int, alpha: float) -> List[float]:
    """Unnormalised Zipf weights ``i^-alpha`` for ``i = 1..count``."""
    return [1.0 / (i ** alpha) if alpha > 0 else 1.0 for i in range(1, count + 1)]


def generate_zipf_path(
    r2_tuples: int = 1000,
    alpha: float = 0.0,
    seed: int = 13,
    config: ZipfConfig | None = None,
) -> Database:
    """Generate the ``R1(A), R2(A, B), R3(B)`` instance of Section 8.4.

    * ``R1`` holds every distinct ``A`` value, ``R3`` every distinct ``B``
      value (so the path query never has dangling endpoint tuples);
    * ``R2`` holds ``r2_tuples`` edges whose ``A`` endpoint is drawn from a
      Zipf(α) distribution over the ``A`` domain and whose ``B`` endpoint is
      drawn uniformly.

    The total input size is ``r2_tuples * (1 + 2 * distinct_ratio)``, matching
    the paper's "input size N with 0.2·N distinct values in A and B".
    """
    cfg = config or ZipfConfig(r2_tuples=r2_tuples, alpha=alpha, seed=seed)
    rng = random.Random(cfg.seed)
    distinct = max(1, int(cfg.r2_tuples * cfg.distinct_ratio))

    a_domain = [f"a{i}" for i in range(distinct)]
    b_domain = [f"b{i}" for i in range(distinct)]
    weights = zipf_weights(distinct, cfg.alpha)

    r1 = Relation("R1", ("A",), [(a,) for a in a_domain])
    r3 = Relation("R3", ("B",), [(b,) for b in b_domain])
    r2 = Relation("R2", ("A", "B"))
    # Sampling with replacement and set semantics means the relation can end
    # up slightly smaller than requested on very skewed configurations; keep
    # drawing until the target size (bounded by the full cross product).
    target = min(cfg.r2_tuples, distinct * distinct)
    attempts = 0
    while len(r2) < target and attempts < 50 * cfg.r2_tuples:
        attempts += 1
        a = rng.choices(a_domain, weights=weights, k=1)[0]
        b = rng.choice(b_domain)
        r2.insert((a, b))
    return Database([r1, r2, r3])
