"""Project-invariant static analysis (``repro analyze``).

Six PRs of engine work rest on correctness contracts that, until this
subsystem, lived only in docstrings and reviewers' heads: NumPy stays
behind :mod:`repro.engine.backend`, interned columns are append-only,
shared state is touched under the right lock, merge paths iterate
deterministically.  ``repro.analysis`` turns each contract into a
mechanical checker over the stdlib :mod:`ast` (no third-party
dependencies), so CI can block a PR that breaks an invariant instead of
hoping a reviewer remembers it.

The pieces:

* :mod:`repro.analysis.framework` -- the checker framework: source
  loading, the :class:`~repro.analysis.framework.Finding` model,
  ``# repro: noqa REPxxx -- why`` suppression (justification required),
  JSON and human-readable rendering;
* :mod:`repro.analysis.checkers` -- the rule suite (REP001..REP006; see
  ``docs/INVARIANTS.md`` for the catalog);
* :func:`repro.analysis.run_analysis` -- the one-call entry point the
  ``repro analyze`` CLI and the self-run test share.
"""

from repro.analysis.framework import (
    AnalysisConfig,
    AnalysisReport,
    Checker,
    Finding,
    SourceFile,
    load_source_files,
    render_json,
    render_text,
    run_analysis,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Checker",
    "Finding",
    "SourceFile",
    "load_source_files",
    "render_json",
    "render_text",
    "run_analysis",
]
