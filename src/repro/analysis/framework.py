"""The checker framework behind ``repro analyze``.

Design goals, in order:

1. **Zero dependencies.**  Everything runs on the stdlib :mod:`ast`; the
   suite must work on the no-NumPy CI leg and inside the repo's own test
   run without installing anything.
2. **Findings are data.**  A :class:`Finding` is a frozen record with a
   rule ID, severity, location and message; renderers (text for humans,
   JSON for tooling) are pure functions over the report.
3. **Suppression is expensive on purpose.**  ``# repro: noqa REPxxx --
   <why>`` silences one rule on one line and *requires* the justification
   text; a blanket ``noqa`` or one without a reason is itself a finding
   (rule ``REP000``), so the suppression inventory stays reviewable.

A :class:`Checker` sees every loaded :class:`SourceFile` once
(:meth:`Checker.check_file`) and may emit cross-file findings at the end
(:meth:`Checker.finish` -- the lock-order-cycle analysis needs the whole
acquisition graph).  ``run_analysis`` wires loading, checking, suppression
and ordering together; the CLI and the self-run test both call it.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Severity levels, in increasing order of concern.  Both fail the build;
#: the split exists so renderers and future tooling can triage.
SEVERITIES = ("warning", "error")

#: ``# repro: noqa REP001`` / ``# repro: noqa REP001, REP003 -- reason``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b"  # the marker
    r"(?P<rules>[^-#]*?)"  # optional rule list
    r"(?:--\s*(?P<why>.*?))?\s*$"  # optional justification
)
_RULE_ID_RE = re.compile(r"REP\d{3}")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative, posix separators
    line: int  # 1-based
    col: int  # 0-based (ast convention)
    rule: str  # "REP001"
    severity: str  # "error" | "warning"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` directive."""

    line: int
    rules: Tuple[str, ...]  # empty = blanket (invalid, reported as REP000)
    justification: str


class SourceFile:
    """One parsed source file plus its suppression directives."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Path relative to the analysis root, posix separators -- the
        #: coordinate every path-scoped rule (and every finding) uses.
        self.rel = rel
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=rel)
        self.suppressions: Dict[int, Suppression] = {}
        self.bad_suppressions: List[Finding] = []
        self._parse_noqa()

    def _parse_noqa(self) -> None:
        # Only genuine comments count: a docstring *describing* the noqa
        # syntax must not register (or be flagged) as a directive.
        for lineno, comment in self._comments():
            match = _NOQA_RE.search(comment)
            if match is None:
                continue
            rules = tuple(_RULE_ID_RE.findall(match.group("rules") or ""))
            why = (match.group("why") or "").strip()
            if not rules:
                self.bad_suppressions.append(
                    Finding(
                        self.rel,
                        lineno,
                        0,
                        "REP000",
                        "error",
                        "blanket 'repro: noqa' is not allowed; name the "
                        "suppressed rule(s), e.g. '# repro: noqa REP001 -- why'",
                    )
                )
                continue
            if not why:
                self.bad_suppressions.append(
                    Finding(
                        self.rel,
                        lineno,
                        0,
                        "REP000",
                        "error",
                        f"suppression of {', '.join(rules)} lacks a "
                        "justification ('# repro: noqa REPxxx -- why')",
                    )
                )
                continue
            self.suppressions[lineno] = Suppression(lineno, rules, why)

    def _comments(self) -> List[Tuple[int, str]]:
        """``(line, text)`` for every comment token (never string contents)."""
        out: List[Tuple[int, str]] = []
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.text).readline):
                if token.type == tokenize.COMMENT and "repro:" in token.string:
                    out.append((token.start[0], token.string))
        except tokenize.TokenError:  # unterminated constructs; ast already parsed
            pass
        return out

    def suppresses(self, finding: Finding) -> bool:
        directive = self.suppressions.get(finding.line)
        return directive is not None and finding.rule in directive.rules


@dataclasses.dataclass
class AnalysisConfig:
    """Path-scoped knobs for the rule suite.

    Paths are relative to the analysis root (the ``repro`` package
    directory in production; a fixture tree in tests) with posix
    separators.  Entries ending in ``/`` are prefixes, others exact files.
    """

    #: REP001: the only module allowed to import NumPy.
    backend_module: str = "engine/backend.py"
    #: REP002: attribute names of interned columns / packed provenance.
    #: ``interned_rows``/``dead_tids`` are the durable mirror of the
    #: interning table (snapshot sections): same append-only contract,
    #: same tid-stability argument.  ``storage/`` only ever constructs
    #: them, so it needs no whitelist entry.
    protected_columns: Tuple[str, ...] = (
        "ref_columns",
        "witness_outputs",
        "output_rows",
        "rows",
        "ids",
        "interned_rows",
        "dead_tids",
    )
    #: REP002: modules that own the whitelisted append/compact sites.
    append_whitelist: Tuple[str, ...] = (
        "engine/delta.py",
        "engine/columnar.py",
    )
    #: REP004: attribute names known to hold sets (``atom.attribute_set``).
    set_attribute_names: Tuple[str, ...] = ("attribute_set",)
    #: REP004: merge/packing paths where iteration order reaches results.
    determinism_paths: Tuple[str, ...] = (
        "parallel/",
        "engine/columnar.py",
        "engine/delta.py",
        "engine/evaluate.py",
        "engine/provenance.py",
    )
    #: REP005: engine code that must stay wall-clock- and RNG-free.
    #: ``storage/`` is held to the same bar: recovery replays bytes into
    #: byte-identical sessions, so nothing on that path may read ambient
    #: state -- the one sanctioned wall-time site is the log-record
    #: timestamp in ``MutationLog.now()`` (suppressed in place).
    wallclock_paths: Tuple[str, ...] = ("engine/", "parallel/", "storage/")
    #: REP005 relaxed scope: monotonic clocks are the whole point of the
    #: tracing layer, but wall time (``time.time``, ``datetime.now``)
    #: stays banned so span offsets never depend on ambient state.
    wallclock_relaxed_paths: Tuple[str, ...] = ("obs/",)
    #: REP006: the PR-2 deprecated shims and their replacements.
    deprecated_names: Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "evaluate": "Session(database).evaluate(query)",
            "compute_adp": "Session(database).solve(query, k)",
            "set_engine_mode": "Session(database, engine=...)",
            "engine_mode": "Session.engine",
            "clear_evaluation_cache": "Session.clear_cache()",
            "evaluation_cache_stats": "Session.stats",
        }
    )
    #: REP006: modules allowed to reference the shims (their definition
    #: sites and the public compat re-export surface).
    deprecated_whitelist: Tuple[str, ...] = (
        "engine/evaluate.py",
        "core/adp.py",
        "__init__.py",
        "engine/__init__.py",
        "core/__init__.py",
    )

    @staticmethod
    def path_matches(rel: str, selectors: Sequence[str]) -> bool:
        """Whether ``rel`` is selected (prefix for ``x/``, else exact)."""
        for selector in selectors:
            if selector.endswith("/"):
                if rel.startswith(selector):
                    return True
            elif rel == selector:
                return True
        return False


class Checker:
    """Base class for one rule (or one family sharing a rule ID)."""

    #: e.g. ``"REP001"``; used by ``--rules`` filtering and suppression.
    rule_id: str = "REP999"
    title: str = ""
    severity: str = "error"

    def begin(self, config: AnalysisConfig) -> None:
        """Reset per-run state (checkers are reused across runs)."""

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        """Findings local to one file."""
        return ()

    def finish(self, config: AnalysisConfig) -> Iterable[Finding]:
        """Cross-file findings, emitted after every file was seen."""
        return ()

    def finding(self, source_rel: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            source_rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.rule_id,
            self.severity,
            message,
        )


@dataclasses.dataclass
class AnalysisReport:
    """The outcome of one ``run_analysis`` call."""

    findings: List[Finding]
    files_checked: int
    rules: Tuple[str, ...]
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings


def load_source_files(
    root: Path, skip: Sequence[str] = (), only: Sequence[str] = ()
) -> List[SourceFile]:
    """Every ``*.py`` under ``root`` (sorted), parsed and noqa-scanned.

    ``skip`` and ``only`` hold root-relative selectors (same syntax as
    :meth:`AnalysisConfig.path_matches`): ``skip`` excludes matches, a
    non-empty ``only`` restricts the run to matches.  The CLI uses ``only``
    to analyze a subtree while keeping paths (and therefore the
    path-scoped rules) rooted at the package directory.
    """
    root = Path(root)
    if root.is_file():
        rel = root.name
        return [SourceFile(root, rel, root.read_text(encoding="utf-8"))]
    sources = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if AnalysisConfig.path_matches(rel, skip):
            continue
        if only and not AnalysisConfig.path_matches(rel, only):
            continue
        sources.append(SourceFile(path, rel, path.read_text(encoding="utf-8")))
    return sources


def run_analysis(
    root: Path,
    checkers: Sequence[Checker],
    config: Optional[AnalysisConfig] = None,
    rules: Optional[Sequence[str]] = None,
    skip: Sequence[str] = (),
    only: Sequence[str] = (),
) -> AnalysisReport:
    """Run ``checkers`` over every python file under ``root``.

    ``rules`` optionally restricts the run to a subset of rule IDs
    (``REP000`` suppression hygiene always runs: a malformed noqa must not
    be hideable by deselecting it).  Suppressed findings are counted but
    not reported; suppression requires a justification, which
    :class:`SourceFile` enforces at parse time.
    """
    config = config or AnalysisConfig()
    selected = [
        checker
        for checker in checkers
        if rules is None or checker.rule_id in rules
    ]
    sources = load_source_files(root, skip=skip, only=only)
    findings: List[Finding] = []
    suppressed = 0
    for checker in selected:
        checker.begin(config)
    for source in sources:
        findings.extend(source.bad_suppressions)
        for checker in selected:
            for finding in checker.check_file(source, config):
                if source.suppresses(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    by_rel = {source.rel: source for source in sources}
    for checker in selected:
        for finding in checker.finish(config):
            source = by_rel.get(finding.path)
            if source is not None and source.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return AnalysisReport(
        findings=findings,
        files_checked=len(sources),
        rules=tuple(checker.rule_id for checker in selected),
        suppressed=suppressed,
    )


def render_text(report: AnalysisReport) -> str:
    """Human-readable rendering (one finding per line plus a summary)."""
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} in {report.files_checked} files "
        f"({report.suppressed} suppressed)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable rendering (stable key order for diffing)."""
    payload = {
        "findings": [finding.to_json() for finding in report.findings],
        "files_checked": report.files_checked,
        "rules": list(report.rules),
        "suppressed": report.suppressed,
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
