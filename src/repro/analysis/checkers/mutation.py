"""REP002: interned columns and packed provenance are append-only.

"Interned" is not "stored": :class:`~repro.engine.columnar.RelationIndex`
tables keep dead rows forever (tids must never be renumbered -- packed
``ref_columns`` refer to them verbatim, and a re-inserted row resurrects
under its old tid), and :class:`~repro.engine.columnar.ColumnarProvenance`
payloads are shared through the evaluation cache, so in-place mutation
corrupts every other holder.  The only sanctioned mutations are the
append/compact sites owned by ``engine/delta.py`` and
``engine/columnar.py`` (the whitelist).

The checker flags, outside the whitelist, any *attribute-reached* mutation
of a protected column name (``x.ref_columns``, ``index.rows``, ...):

* mutating method calls (``append``, ``extend``, ``pop``, ``remove``,
  ``clear``, ``insert``, ``sort``, ``reverse``, ``update``,
  ``setdefault``, ``popitem``),
* ``del x.rows[...]`` and ``x.rows[...] = ...`` (index or slice),
* rebinding or augmented-assigning the attribute itself
  (``x.ref_columns = ...`` / ``+=``), except in ``__init__`` /
  ``__new__`` where the object is still private to its constructor.

Local variables with the same names are untouched: builders assembling
their *own* lists before packing them is the normal pattern.
"""

from __future__ import annotations

import ast
from typing import Container, Iterable, Iterator, Optional, Tuple

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "remove",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
    }
)

_CONSTRUCTORS = frozenset({"__init__", "__new__"})


def _protected_attribute(node: ast.AST, protected: Container[str]) -> Optional[str]:
    """The protected column name if ``node`` is ``<expr>.<protected>``."""
    if isinstance(node, ast.Attribute) and node.attr in protected:
        return node.attr
    return None


class AppendOnlyChecker(Checker):
    rule_id = "REP002"
    title = "interned columns / packed provenance are append-only"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        if AnalysisConfig.path_matches(source.rel, config.append_whitelist):
            return
        protected = frozenset(config.protected_columns)
        whitelist = ", ".join(config.append_whitelist)
        for scope, node in _walk_with_scope(source.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and _protected_attribute(func.value, protected)
                ):
                    name = _protected_attribute(func.value, protected)
                    yield self.finding(
                        source.rel,
                        node,
                        f".{name}.{func.attr}(...) mutates an interned/packed "
                        f"column outside the whitelisted sites ({whitelist}); "
                        "build a new column instead",
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = self._subscript_of_protected(target, protected)
                    if name:
                        yield self.finding(
                            source.rel,
                            node,
                            f"'del ....{name}[...]' removes entries from an "
                            "interned/packed column; tids are append-only "
                            f"(whitelisted sites: {whitelist})",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    name = self._subscript_of_protected(target, protected)
                    if name:
                        yield self.finding(
                            source.rel,
                            node,
                            f"subscript assignment into ....{name} mutates an "
                            "interned/packed column in place (whitelisted "
                            f"sites: {whitelist})",
                        )
                        continue
                    name = _protected_attribute(target, protected)
                    if name and not (
                        scope in _CONSTRUCTORS
                        and isinstance(target, ast.Attribute)
                        and self._receiver_is_fresh(target.value)
                    ):
                        yield self.finding(
                            source.rel,
                            node,
                            f"rebinding ....{name} outside a constructor "
                            "swaps a shared packed column under other "
                            f"holders (whitelisted sites: {whitelist})",
                        )

    @staticmethod
    def _subscript_of_protected(
        node: ast.AST, protected: Container[str]
    ) -> Optional[str]:
        if isinstance(node, ast.Subscript):
            return _protected_attribute(node.value, protected)
        return None

    @staticmethod
    def _receiver_is_fresh(node: ast.AST) -> bool:
        """Whether the attribute receiver is the object under construction."""
        return isinstance(node, ast.Name) and node.id in ("self", "index", "instance")


def _walk_with_scope(tree: ast.Module) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """``(enclosing function name or None, node)`` pairs, in document order."""
    stack: "list[Tuple[Optional[str], ast.AST]]" = [(None, tree)]
    while stack:
        scope, node = stack.pop()
        yield scope, node
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scope = child.name
            stack.append((child_scope, child))


__all__ = ["AppendOnlyChecker"]
