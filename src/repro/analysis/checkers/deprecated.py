"""REP006: the PR-2 deprecated shims are not used from inside ``src/``.

``evaluate(query, database)``, ``compute_adp``, ``set_engine_mode`` and
the cache helpers survive as ``DeprecationWarning`` shims over implicit
per-database default sessions -- for *external* callers mid-migration
(docs/MIGRATION.md).  Internal code reaching back through them would
route state through the hidden default-session registry, bypassing the
session the caller actually holds (wrong cache, wrong backend, wrong
worker pool) and muffling the deprecation signal users rely on.

Flagged outside the whitelist (the shims' own definition modules and the
compat re-export ``__init__`` surfaces):

* ``from repro.engine.evaluate import evaluate`` (and any shim name, from
  any ``repro`` module -- re-exports count),
* attribute calls of a shim through an imported module
  (``evaluate_module.set_engine_mode(...)``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

#: Modules whose attributes are shim candidates when accessed by name.
_SHIM_HOMES = ("repro.engine.evaluate", "repro.engine", "repro.core.adp", "repro")


class DeprecatedShimChecker(Checker):
    rule_id = "REP006"
    title = "no PR-2 deprecated shims inside src/"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        if AnalysisConfig.path_matches(source.rel, config.deprecated_whitelist):
            return
        deprecated: Dict[str, str] = config.deprecated_names
        #: local alias -> module path, for ``import repro.engine.evaluate as ev``.
        module_aliases: Dict[str, str] = {}
        #: local names bound to a shim by ``from ... import shim [as alias]``.
        shim_aliases: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _SHIM_HOMES:
                        module_aliases[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if not (node.module == "repro" or node.module.startswith("repro.")):
                    continue
                for alias in node.names:
                    if alias.name in deprecated:
                        shim_aliases.add(alias.asname or alias.name)
                        yield self.finding(
                            source.rel,
                            node,
                            f"import of deprecated shim {alias.name!r} from "
                            f"{node.module}; use {deprecated[alias.name]} "
                            "(see docs/MIGRATION.md)",
                        )
            elif isinstance(node, ast.Call):
                target = node.func
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in deprecated
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_aliases
                ):
                    yield self.finding(
                        source.rel,
                        node,
                        f"call of deprecated shim "
                        f"{module_aliases[target.value.id]}.{target.attr}; "
                        f"use {deprecated[target.attr]} (see "
                        "docs/MIGRATION.md)",
                    )


__all__ = ["DeprecatedShimChecker"]
