"""The project-invariant rule suite.

===========  ==============================================================
Rule         Invariant
===========  ==============================================================
``REP000``   Suppressions name their rule and carry a justification
             (enforced by the framework itself at parse time).
``REP001``   NumPy is imported only through ``engine/backend.py`` -- the
             backend-parity contract.
``REP002``   Interned relation columns and packed provenance arrays are
             append-only; mutation lives in the whitelisted delta/columnar
             sites.
``REP003``   Lock discipline: guarded fields are touched under their lock,
             no ``await`` runs while a sync lock is held, and the lock
             acquisition graph is cycle-free.
``REP004``   Merge/packing paths never iterate sets (or set-derived dicts)
             whose order could differ across processes.
``REP005``   Engine and parallel code is wall-clock- and module-RNG-free.
``REP006``   The PR-2 deprecated shims are not used from inside ``src/``.
===========  ==============================================================

``docs/INVARIANTS.md`` is the narrative catalog; this table is the code's
index.  ``ALL_CHECKERS`` is the production suite, in rule order.
"""

from repro.analysis.checkers.backend import BackendIsolationChecker
from repro.analysis.checkers.deprecated import DeprecatedShimChecker
from repro.analysis.checkers.determinism import DeterministicIterationChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.mutation import AppendOnlyChecker
from repro.analysis.checkers.wallclock import WallClockChecker
from repro.analysis.framework import Checker


def all_checkers() -> "list[Checker]":
    """A fresh production suite (checkers hold per-run state)."""
    return [
        BackendIsolationChecker(),
        AppendOnlyChecker(),
        LockDisciplineChecker(),
        DeterministicIterationChecker(),
        WallClockChecker(),
        DeprecatedShimChecker(),
    ]


#: Every rule ID the suite can emit, including the framework's own REP000.
KNOWN_RULES = ("REP000", "REP001", "REP002", "REP003", "REP004", "REP005", "REP006")

__all__ = [
    "ALL_RULE_IDS",
    "AppendOnlyChecker",
    "BackendIsolationChecker",
    "DeprecatedShimChecker",
    "DeterministicIterationChecker",
    "KNOWN_RULES",
    "LockDisciplineChecker",
    "WallClockChecker",
    "all_checkers",
]

ALL_RULE_IDS = KNOWN_RULES
