"""REP001: NumPy stays behind ``engine/backend.py``.

The array-backend contract (docs/ARCHITECTURE.md, "Array backends") says
NumPy is optional: every kernel has a pure-Python twin, selection happens
once at session construction, and downstream code dispatches on the
*column type*, never on the library.  One stray ``import numpy`` anywhere
else silently breaks the no-NumPy CI leg and couples a module to an
optional dependency.  This checker bans

* ``import numpy`` / ``import numpy.x`` / ``from numpy import ...``,
* dynamic equivalents: ``__import__("numpy")`` and
  ``importlib.import_module("numpy...")``

everywhere except the configured backend module.  Access through a
backend handle (``backend.np.concatenate(...)``) is the sanctioned
pattern and is untouched.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile


def _is_numpy_module(name: str) -> bool:
    return name == "numpy" or name.startswith("numpy.")


class BackendIsolationChecker(Checker):
    rule_id = "REP001"
    title = "NumPy imports only in engine/backend.py"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        if source.rel == config.backend_module:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_numpy_module(alias.name):
                        yield self.finding(
                            source.rel,
                            node,
                            f"import of {alias.name!r} outside "
                            f"{config.backend_module}: go through the array "
                            "backend (repro.engine.backend) so the "
                            "pure-Python leg stays green",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _is_numpy_module(node.module) and node.level == 0:
                    yield self.finding(
                        source.rel,
                        node,
                        f"'from {node.module} import ...' outside "
                        f"{config.backend_module}: go through the array "
                        "backend (repro.engine.backend)",
                    )
            elif isinstance(node, ast.Call):
                target = self._dynamic_import_target(node)
                if target is not None and _is_numpy_module(target):
                    yield self.finding(
                        source.rel,
                        node,
                        f"dynamic import of {target!r} outside "
                        f"{config.backend_module}: go through the array "
                        "backend (repro.engine.backend)",
                    )

    @staticmethod
    def _dynamic_import_target(node: ast.Call) -> "str | None":
        """The literal module name of ``__import__``/``import_module`` calls."""
        func = node.func
        named_import = isinstance(func, ast.Name) and func.id == "__import__"
        module_import = (
            isinstance(func, ast.Attribute)
            and func.attr == "import_module"
            and isinstance(func.value, ast.Name)
            and func.value.id == "importlib"
        )
        if not (named_import or module_import):
            return None
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                return value
        return None


__all__ = ["BackendIsolationChecker"]
