"""REP004: merge/packing paths never iterate in set order.

The parallel merge (``parallel/merge.py``) reproduces the serial engine's
output *byte-identically*: witness order is the lexicographic join-order
tid tuple, and every consumer downstream (greedy tie-breaking, packed
columns, the parity suites) depends on it.  Python set iteration order is
a function of element hashes -- and for strings, of the per-process hash
seed -- so one ``for x in some_set`` feeding an ordered result makes the
output process-dependent.  Dicts iterate in insertion order, which is
deterministic *unless* the dict was itself built by iterating a set.

Within the configured merge/packing paths this checker flags, at
iteration points (``for``, list/generator comprehensions, ``list()`` /
``tuple()`` / ``enumerate()`` / ``zip()`` / ``reversed()``):

* set expressions: literals, ``set()``/``frozenset()`` calls, set
  comprehensions, set algebra (``|  & - ^``, ``.union()`` etc.), locals
  assigned from any of those, and attributes configured as set-typed
  (``.attribute_set``);
* dicts built *from* sets (a dict comprehension or ``dict.fromkeys``
  over a set expression), including their ``.keys()`` / ``.values()`` /
  ``.items()`` views.

Order-insensitive sinks are allowed: ``sorted(...)``, ``min``/``max``,
``len``, ``sum``, ``any``/``all``, membership tests, set-to-set
comprehensions, and boolean use of set algebra.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
#: Iteration wrappers that preserve (and therefore leak) element order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "enumerate", "reversed", "zip", "iter"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})


_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _scope_walk(
    body: Sequence[ast.AST], nested: Optional[List[_FunctionNode]] = None
) -> Iterator[ast.AST]:
    """Document-order walk of ``body`` that prunes nested function subtrees.

    Nested ``def``s get their own :class:`_FunctionScope`; they are
    collected into ``nested`` (when given) instead of being descended into.
    """
    stack = list(reversed(body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if nested is not None:
                nested.append(node)
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


class _FunctionScope:
    """Set-typed locals and set-ordered dict locals of one function body."""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config
        self.set_names: Set[str] = set()
        self.set_ordered_dicts: Set[str] = set()
        #: names assigned at least once from a non-set value (ambiguous ->
        #: conservative: never flagged).
        self.tainted: Set[str] = set()

    def learn(self, body: Sequence[ast.stmt]) -> None:
        for node in _scope_walk(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self.is_set_expr(node.value):
                        self.set_names.add(target.id)
                    elif self._is_set_ordered_dict(node.value):
                        self.set_ordered_dicts.add(target.id)
                    else:
                        self.tainted.add(target.id)
        self.set_names -= self.tainted
        self.set_ordered_dicts -= self.tainted

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            if node.attr in self.config.set_attribute_names:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
        return False

    def _is_set_ordered_dict(self, node: ast.expr) -> bool:
        if isinstance(node, ast.DictComp):
            return any(self.is_set_expr(gen.iter) for gen in node.generators)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "fromkeys"
                and isinstance(func.value, ast.Name)
                and func.value.id == "dict"
            ):
                return bool(node.args) and self.is_set_expr(node.args[0])
        return False

    def iterates_set_ordered_dict(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.set_ordered_dicts
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and isinstance(node.func.value, ast.Name)
        ):
            return node.func.value.id in self.set_ordered_dicts
        return False


class DeterministicIterationChecker(Checker):
    rule_id = "REP004"
    title = "no set-order iteration in merge/packing paths"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        if not AnalysisConfig.path_matches(source.rel, config.determinism_paths):
            return
        yield from self._check_body(source, source.tree.body, config)

    def _check_body(
        self,
        source: SourceFile,
        body: Sequence[ast.stmt],
        config: AnalysisConfig,
    ) -> Iterator[Finding]:
        scope = _FunctionScope(config)
        scope.learn(body)
        nested: List[_FunctionNode] = []
        for node in _scope_walk(body, nested):
            yield from self._check_node(source, node, scope)
        for func in nested:
            yield from self._check_body(source, func.body, config)

    def _check_node(
        self, source: SourceFile, node: ast.AST, scope: _FunctionScope
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from self._flag_iteration(source, node.iter, scope)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield from self._flag_iteration(source, gen.iter, scope)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDER_PRESERVING:
                for arg in node.args:
                    yield from self._flag_iteration(source, arg, scope, unwrap=False)

    def _flag_iteration(
        self,
        source: SourceFile,
        iter_expr: ast.expr,
        scope: _FunctionScope,
        unwrap: bool = True,
    ) -> Iterator[Finding]:
        node = iter_expr
        while (
            unwrap
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_PRESERVING
            and node.args
        ):
            # Flagging happens on the inner expression via the Call branch
            # of _check_node; avoid double-reporting here.
            return
        if scope.is_set_expr(node):
            yield self.finding(
                source.rel,
                node,
                "iteration over a set in a merge/packing path: set order "
                "is hash-seed-dependent and breaks cross-process "
                "byte-identity; sort the elements (e.g. sorted(...)) or "
                "iterate an ordered source",
            )
        elif scope.iterates_set_ordered_dict(node):
            yield self.finding(
                source.rel,
                node,
                "iteration over a dict built from a set: its insertion "
                "order inherited the set's hash order; build the dict "
                "from a sorted or naturally-ordered source",
            )


__all__ = ["DeterministicIterationChecker"]
