"""REP005: engine/parallel code is wall-clock- and module-RNG-free.

Everything under ``engine/`` and ``parallel/`` must be a deterministic
function of its inputs: results are compared byte-for-byte across
backends, worker counts and incremental-mutation replays, and the
evaluation cache assumes a (query, database version) pair pins the
answer.  ``time.time()`` (or any wall/CPU clock) and the *module-level*
``random`` functions (which mutate hidden global state seeded per
process) both smuggle ambient nondeterminism into that contract.

Flagged inside the configured paths:

* references to ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
  ``time.perf_counter`` (timing belongs in benchmarks and the service
  tier, not in kernels),
* ``from time import time`` and friends,
* module-level ``random.<fn>(...)`` calls and ``from random import ...``.

Seeded contexts stay available: constructing an explicit
``random.Random(seed)`` instance is allowed (the workload generators'
pattern) -- only the shared module-global generator is banned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

_CLOCK_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
#: Explicitly-seeded generator constructors (allowed).
_SEEDED_FACTORIES = frozenset({"Random", "SystemRandom"})


class WallClockChecker(Checker):
    rule_id = "REP005"
    title = "no wall clock / module-global RNG in engine or parallel code"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        if not AnalysisConfig.path_matches(source.rel, config.wallclock_paths):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                receiver = node.value.id
                if receiver == "time" and node.attr in _CLOCK_ATTRS:
                    yield self.finding(
                        source.rel,
                        node,
                        f"time.{node.attr} in deterministic engine code: "
                        "results must be a pure function of the inputs "
                        "(timing belongs in benchmarks/ or the service tier)",
                    )
                elif receiver == "random" and node.attr not in _SEEDED_FACTORIES:
                    yield self.finding(
                        source.rel,
                        node,
                        f"random.{node.attr} uses the module-global RNG; "
                        "thread an explicit random.Random(seed) through "
                        "instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    names = ", ".join(alias.name for alias in node.names)
                    yield self.finding(
                        source.rel,
                        node,
                        f"'from time import {names}' in deterministic engine "
                        "code (timing belongs in benchmarks/ or the service "
                        "tier)",
                    )
                elif node.module == "random":
                    offenders = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _SEEDED_FACTORIES
                    ]
                    if offenders:
                        yield self.finding(
                            source.rel,
                            node,
                            f"'from random import {', '.join(offenders)}' "
                            "imports the module-global RNG; use an explicit "
                            "random.Random(seed) instance",
                        )


__all__ = ["WallClockChecker"]
