"""REP005: engine/parallel/storage code is wall-clock- and module-RNG-free.

Everything under ``engine/``, ``parallel/`` and ``storage/`` must be a
deterministic function of its inputs: results are compared byte-for-byte
across backends, worker counts, incremental-mutation replays and
crash-recovery replays, and the evaluation cache assumes a (query,
database version) pair pins the answer.  Durability raises the stakes:
recovery re-derives a session from snapshot + log bytes and the fault
suite asserts the result byte-identical, so ambient state on that path
would surface as phantom corruption.  (The one sanctioned exception is
the record-header timestamp in ``MutationLog.now()``, suppressed at its
definition.)  ``time.time()`` (or any wall/CPU clock) and the *module-level*
``random`` functions (which mutate hidden global state seeded per
process) both smuggle ambient nondeterminism into that contract.

Flagged inside the configured strict paths:

* references to ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
  ``time.perf_counter`` (timing belongs in benchmarks and the service
  tier, not in kernels),
* ``from time import time`` and friends,
* ``datetime.now`` / ``datetime.utcnow`` / ``date.today`` (wall time by
  another import),
* module-level ``random.<fn>(...)`` calls and ``from random import ...``.

The tracing layer (``obs/``, the configured *relaxed* paths) exists to
measure durations, so the monotonic clocks (``time.monotonic[_ns]``,
``time.perf_counter[_ns]``) are allowed there -- but wall time
(``time.time``, ``datetime.now``) and the module-global RNG stay banned:
span offsets must never depend on ambient state, and wall timestamps are
the service tier's job.

Seeded contexts stay available everywhere: constructing an explicit
``random.Random(seed)`` instance is allowed (the workload generators'
pattern) -- only the shared module-global generator is banned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

_CLOCK_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
#: The subset allowed in relaxed (obs/) scope: monotonic, not wall, time.
_MONOTONIC_ATTRS = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
#: Wall-clock constructors on datetime/date objects.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: Explicitly-seeded generator constructors (allowed).
_SEEDED_FACTORIES = frozenset({"Random", "SystemRandom"})


def _is_datetime_receiver(value: ast.expr) -> bool:
    """``datetime.now`` / ``date.today`` / ``datetime.datetime.now``."""
    if isinstance(value, ast.Name):
        return value.id in ("datetime", "date")
    if isinstance(value, ast.Attribute):
        return value.attr in ("datetime", "date")
    return False


class WallClockChecker(Checker):
    rule_id = "REP005"
    title = "no wall clock / module-global RNG in engine or parallel code"

    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        relaxed = AnalysisConfig.path_matches(
            source.rel, config.wallclock_relaxed_paths
        )
        if not relaxed and not AnalysisConfig.path_matches(
            source.rel, config.wallclock_paths
        ):
            return
        banned_clocks = _CLOCK_ATTRS - _MONOTONIC_ATTRS if relaxed else _CLOCK_ATTRS
        where = (
            "the tracing layer (wall time belongs to the service tier)"
            if relaxed
            else "deterministic engine code: results must be a pure "
            "function of the inputs (timing belongs in benchmarks/ or "
            "the service tier)"
        )
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name):
                    receiver = node.value.id
                    if receiver == "time" and node.attr in banned_clocks:
                        yield self.finding(
                            source.rel, node, f"time.{node.attr} in {where}"
                        )
                        continue
                    if receiver == "random" and node.attr not in _SEEDED_FACTORIES:
                        yield self.finding(
                            source.rel,
                            node,
                            f"random.{node.attr} uses the module-global RNG; "
                            "thread an explicit random.Random(seed) through "
                            "instead",
                        )
                        continue
                if node.attr in _DATETIME_ATTRS and _is_datetime_receiver(
                    node.value
                ):
                    yield self.finding(
                        source.rel,
                        node,
                        f"{ast.unparse(node)} reads the wall clock in {where}",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    offenders = [
                        alias.name
                        for alias in node.names
                        if alias.name in banned_clocks
                    ]
                    if offenders:
                        yield self.finding(
                            source.rel,
                            node,
                            f"'from time import {', '.join(offenders)}' "
                            f"in {where}",
                        )
                elif node.module == "random":
                    offenders = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _SEEDED_FACTORIES
                    ]
                    if offenders:
                        yield self.finding(
                            source.rel,
                            node,
                            f"'from random import {', '.join(offenders)}' "
                            "imports the module-global RNG; use an explicit "
                            "random.Random(seed) instance",
                        )


__all__ = ["WallClockChecker"]
