"""REP003: lock discipline across the concurrent subsystems.

Three mechanical analyses over the ``with <lock>`` / ``acquire()``
patterns the codebase uses (``service/registry.py``, ``engine/cache.py``,
``parallel/pool.py``, the engine context, metrics, admission):

1. **Guarded-field access.**  Per class: every attribute assigned a lock
   factory (``threading.Lock/RLock/Condition``, ``ReadWriteLock``, ...)
   is a *lock attribute*; every ``self.field`` that is mutated under
   ``with self.<lock>`` in a non-constructor method is a *guarded field*;
   any other access to a guarded field outside a ``with`` on its guarding
   lock is flagged.  Constructors are exempt (the object is still
   thread-private), and intentional lock-free fast paths (double-checked
   lazy builds) carry justified ``# repro: noqa REP003`` suppressions.

2. **``await`` while holding a sync lock.**  Inside ``async def``, an
   ``await`` under a synchronous ``with <lock-ish>`` parks the coroutine
   while a *thread* lock stays held -- every other event-loop task (and
   any solver thread wanting the lock) stalls.  Sync locks belong on
   executor threads; the event loop coordinates with asyncio primitives.

3. **Lock-order cycles.**  Nested ``with`` acquisitions (and linear
   ``x.acquire()`` / ``x.release()`` brackets) build a directed
   acquisition graph over canonical lock names (``Class.attr`` for
   ``self`` locks); a cycle in that graph is a deadlock waiting for the
   right interleaving and is reported with a witness edge.

The analyses are intraprocedural by design: a helper called under a lock
is not credited with holding it (cross-function lock flow is what the
thread-hammer tests cover).  That keeps the rule fast, predictable and
false-positive-light.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import AnalysisConfig, Checker, Finding, SourceFile

#: Callables whose result is a lock object when assigned to ``self.<attr>``.
_LOCK_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "ReadWriteLock",
    }
)

#: Guard-method suffixes: ``with self.lock.read():`` guards via ``lock``.
_GUARD_METHODS = frozenset(
    {"read", "write", "acquire", "acquire_read", "acquire_write"}
)

#: Attribute-method calls that mutate their receiver (count as writes).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "remove",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
        "add",
        "discard",
        "move_to_end",
    }
)

_CONSTRUCTORS = frozenset({"__init__", "__new__"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
#: One recorded access: ``(method, field, guards held, is_write, node)``.
_Access = Tuple[str, str, Tuple[str, ...], bool, ast.AST]


def _base_self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` reaches ``self.X`` through calls/subscripts."""
    while True:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _GUARD_METHODS:
                node = func.value
                continue
            return None
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            return None
        return None


def _looks_lockish(node: ast.expr) -> bool:
    """Whether a ``with`` item plausibly holds a thread lock.

    Matches any dotted component containing ``lock``/``mutex``/``cond``
    (``self._lock``, ``entry.lock.read()``, ``self._locks[i]``,
    ``self._cond``); used by the await-under-lock and lock-graph passes,
    which must work across receivers, not just ``self``.
    """
    for name in _name_parts(node):
        lowered = name.lower()
        if "lock" in lowered or "mutex" in lowered or lowered.endswith("cond"):
            return True
    return False


def _name_parts(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _GUARD_METHODS:
                node = func.value
                continue
            return parts
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
            continue
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return parts


def _lock_key(node: ast.expr, class_name: Optional[str]) -> str:
    """A canonical graph node for one lock expression.

    ``self``-rooted locks are scoped by class (``WorkerPool._known_lock``)
    so the same lock matches across methods; other receivers keep their
    dotted source form.
    """
    parts = list(reversed(_name_parts(node)))
    if parts and parts[0] == "self" and class_name:
        parts[0] = class_name
    return ".".join(parts) or "<unknown-lock>"


class LockDisciplineChecker(Checker):
    rule_id = "REP003"
    title = "lock discipline (guarded fields, await-under-lock, lock order)"

    def begin(self, config: AnalysisConfig) -> None:
        #: acquisition edges: held -> {acquired: (path, line)}.
        self._edges: Dict[str, Dict[str, Tuple[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # Per-file pass
    # ------------------------------------------------------------------ #
    def check_file(self, source: SourceFile, config: AnalysisConfig) -> Iterable[Finding]:
        for node in source.tree.body:
            yield from self._walk_toplevel(source, node, class_name=None)

    def _walk_toplevel(
        self, source: SourceFile, node: ast.stmt, class_name: Optional[str]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            yield from self._check_class(source, node)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(source, child, node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_function(source, node, class_name)

    # ------------------------------------------------------------------ #
    # 1. Guarded-field analysis (per class)
    # ------------------------------------------------------------------ #
    def _check_class(self, source: SourceFile, klass: ast.ClassDef) -> Iterable[Finding]:
        methods = [
            child
            for child in klass.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attributes(methods)
        if not lock_attrs:
            return
        accesses: List[_Access] = []
        for method in methods:
            self._collect_accesses(method, lock_attrs, accesses)
        guarded_by: Dict[str, Set[str]] = {}
        for method_name, field, guards, is_write, _node in accesses:
            if method_name in _CONSTRUCTORS or field in lock_attrs:
                continue
            if is_write:
                for guard in guards:
                    if guard in lock_attrs:
                        guarded_by.setdefault(field, set()).add(guard)
        for method_name, field, guards, is_write, node in accesses:
            if method_name in _CONSTRUCTORS or field not in guarded_by:
                continue
            locks = guarded_by[field]
            if not locks.intersection(guards):
                kind = "write to" if is_write else "read of"
                lock_names = " / ".join(
                    f"self.{lock}" for lock in sorted(locks)
                )
                yield self.finding(
                    source.rel,
                    node,
                    f"{kind} {klass.name}.{field} outside 'with "
                    f"{lock_names}' (field is mutated under that lock "
                    f"in other methods)",
                )

    @staticmethod
    def _lock_attributes(methods: Sequence[_FunctionNode]) -> Set[str]:
        lock_attrs: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                factory = None
                if isinstance(value, ast.Call):
                    func = value.func
                    if isinstance(func, ast.Name):
                        factory = func.id
                    elif isinstance(func, ast.Attribute):
                        factory = func.attr
                if factory not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    attr = _base_self_attr(target)
                    if attr:
                        lock_attrs.add(attr)
        return lock_attrs

    def _collect_accesses(
        self,
        method: _FunctionNode,
        lock_attrs: Set[str],
        out: List[_Access],
        _guards: Tuple[str, ...] = (),
    ) -> None:
        """Record every ``self.field`` access with the guard stack held."""

        def visit(node: ast.AST, guards: Tuple[str, ...], in_nested: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and in_nested:
                # A nested def may run after the enclosing ``with`` exits:
                # its body starts with no locks held (conservative).
                for child in ast.iter_child_nodes(node):
                    visit(child, (), True)
                return
            if isinstance(node, ast.With):
                held = list(guards)
                for item in node.items:
                    attr = _base_self_attr(item.context_expr)
                    if attr in lock_attrs:
                        held.append(attr)
                for child in node.body:
                    visit(child, tuple(held), in_nested)
                for item in node.items:
                    visit(item.context_expr, guards, in_nested)
                return
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                # ``self.d[k] = v`` / ``del self.d[k]``: the Store ctx sits
                # on the Subscript, not the Attribute -- count the container
                # mutation as a write to the field.
                attr = _base_self_attr(node.value)
                if attr:
                    out.append((method.name, attr, guards, True, node))
            if isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                    out.append((method.name, node.attr, guards, is_write, node))
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    attr = _base_self_attr(func.value)
                    if attr:
                        out.append((method.name, attr, guards, True, node))
                        for arg in node.args:
                            visit(arg, guards, in_nested)
                        for keyword in node.keywords:
                            visit(keyword.value, guards, in_nested)
                        return
            for child in ast.iter_child_nodes(node):
                visit(child, guards, in_nested)

        for child in ast.iter_child_nodes(method):
            visit(child, _guards, False)

    # ------------------------------------------------------------------ #
    # 2. await-under-lock + 3. acquisition-graph edges (per function)
    # ------------------------------------------------------------------ #
    def _check_function(
        self,
        source: SourceFile,
        func: _FunctionNode,
        class_name: Optional[str],
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        is_async = isinstance(func, ast.AsyncFunctionDef)

        def visit(node: ast.AST, held: Tuple[str, ...], async_scope: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                nested_async = isinstance(node, ast.AsyncFunctionDef)
                for child in ast.iter_child_nodes(node):
                    visit(child, (), nested_async)
                return
            if isinstance(node, ast.With):
                new_held = list(held)
                for item in node.items:
                    if _looks_lockish(item.context_expr):
                        key = _lock_key(item.context_expr, class_name)
                        for holder in held:
                            if holder != key:
                                self._edges.setdefault(holder, {}).setdefault(
                                    key, (source.rel, item.context_expr.lineno)
                                )
                        new_held.append(key)
                for child in node.body:
                    visit(child, tuple(new_held), async_scope)
                for item in node.items:
                    visit(item.context_expr, held, async_scope)
                return
            if isinstance(node, ast.Await) and held and async_scope:
                findings.append(
                    self.finding(
                        source.rel,
                        node,
                        "'await' while holding sync lock(s) "
                        f"{', '.join(sorted(set(held)))}: the coroutine may "
                        "park with a thread lock held, stalling the event "
                        "loop; move the locked section onto an executor "
                        "thread",
                    )
                )
                # Still recurse: the awaited expression may nest further.
            if isinstance(node, (ast.Expr,)) and isinstance(node.value, ast.Call):
                called = node.value.func
                if isinstance(called, ast.Attribute) and called.attr == "acquire":
                    if _looks_lockish(called.value):
                        key = _lock_key(called.value, class_name)
                        for holder in held:
                            if holder != key:
                                self._edges.setdefault(holder, {}).setdefault(
                                    key, (source.rel, node.lineno)
                                )
            for child in ast.iter_child_nodes(node):
                visit(child, held, async_scope)

        for child in ast.iter_child_nodes(func):
            visit(child, (), is_async)
        return findings

    # ------------------------------------------------------------------ #
    # Cross-file: cycles in the acquisition graph
    # ------------------------------------------------------------------ #
    def finish(self, config: AnalysisConfig) -> Iterable[Finding]:
        for cycle in self._find_cycles():
            first, second = cycle[0], cycle[1 % len(cycle)]
            path, line = self._edges[first][second]
            ordering = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                path,
                line,
                0,
                self.rule_id,
                "error",
                f"lock-order cycle: {ordering}; two call paths acquire "
                "these locks in opposite orders, which deadlocks under "
                "the right interleaving",
            )

    def _find_cycles(self) -> List[Tuple[str, ...]]:
        seen_cycles: Set[Tuple[str, ...]] = set()
        cycles: List[Tuple[str, ...]] = []

        def dfs(node: str, stack: List[str], on_stack: Set[str]) -> None:
            for successor in self._edges.get(node, {}):
                if successor in on_stack:
                    start = stack.index(successor)
                    cycle = tuple(stack[start:])
                    # Canonicalize rotation so each cycle reports once.
                    pivot = cycle.index(min(cycle))
                    canonical = cycle[pivot:] + cycle[:pivot]
                    if canonical not in seen_cycles:
                        seen_cycles.add(canonical)
                        cycles.append(canonical)
                elif successor not in visited:
                    visited.add(successor)
                    stack.append(successor)
                    on_stack.add(successor)
                    dfs(successor, stack, on_stack)
                    on_stack.discard(successor)
                    stack.pop()

        visited: Set[str] = set()
        for node in sorted(self._edges):
            if node not in visited:
                visited.add(node)
                dfs(node, [node], {node})
        return cycles


__all__ = ["LockDisciplineChecker"]
