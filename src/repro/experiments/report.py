"""Plain-text rendering of experiment results.

The paper presents its evaluation as plots; this library is terminal-first,
so results are rendered as aligned text tables (one per figure) that show the
same series: rows are grid points, columns include the method, the running
time and the solution size.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.harness import ExperimentResult


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(result: ExperimentResult, columns: Sequence[str] | None = None) -> str:
    """Render one :class:`ExperimentResult` as an aligned text table."""
    columns = list(columns) if columns else result.columns()
    rows = [[_format_cell(row.get(column, "")) for column in columns] for row in result.rows]
    widths = [
        max(len(column), *(len(row[i]) for row in rows)) if rows else len(column)
        for i, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
    ]
    title = f"{result.figure}: {result.description}"
    lines = [title, "=" * len(title), header, separator, *body]
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def render_results(results: Dict[str, ExperimentResult]) -> str:
    """Render a collection of figure results separated by blank lines."""
    return "\n\n".join(format_table(result) for result in results.values())


def print_results(results: Dict[str, ExperimentResult]) -> None:
    """Print a collection of figure results to stdout."""
    print(render_results(results))
