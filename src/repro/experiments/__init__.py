"""Experiment harness reproducing the paper's evaluation (Figures 7--29).

* :mod:`repro.experiments.harness` -- timing helpers and the generic
  "run one (query, database, k) with one method" runner;
* :mod:`repro.experiments.figures` -- one function per figure (or per figure
  group sharing a workload) returning an :class:`ExperimentResult` with the
  same series the paper plots;
* :mod:`repro.experiments.report` -- plain-text rendering of experiment
  results (used by ``examples/`` and by EXPERIMENTS.md).

Scales default to laptop-friendly values; every figure function accepts the
paper's parameters (input sizes, ratios ρ, skew α) so that larger runs are a
keyword argument away.
"""

from repro.experiments.harness import ExperimentResult, MethodRun, run_method, timed
from repro.experiments.report import format_table, render_results
from repro.experiments import figures

__all__ = [
    "ExperimentResult",
    "MethodRun",
    "run_method",
    "timed",
    "format_table",
    "render_results",
    "figures",
]
