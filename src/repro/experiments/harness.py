"""Generic experiment plumbing.

Every figure of the paper ultimately reports, for a grid of parameters
(input size, removal ratio ρ, skew α, query, method), one of two quantities:

* the **running time** of a method, or
* the **quality** of its solution (number of input tuples removed).

:func:`run_method` produces both for a single grid point, and
:class:`ExperimentResult` is the tidy table the figure functions return.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.adp import ratio_target
from repro.core.bruteforce import bruteforce_solve
from repro.core.solution import ADPSolution
from repro.data.database import Database
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery
from repro.session import Session, default_session

#: Method names accepted by :func:`run_method` (the names used in the plots).
METHODS = ("exact", "exact-counting", "greedy", "drastic", "bruteforce")


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once and return ``(result, elapsed seconds)``."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, elapsed


@dataclass
class MethodRun:
    """Outcome of one (query, database, k, method) grid point."""

    method: str
    k: int
    output_size: int
    seconds: float
    solution_size: int
    optimal: bool
    removed_outputs: int

    def as_row(self, **extra) -> Dict[str, object]:
        """The run as a flat report row, with extra grid parameters merged in."""
        row = {
            "method": self.method,
            "k": self.k,
            "output_size": self.output_size,
            "seconds": round(self.seconds, 6),
            "solution_size": self.solution_size,
            "optimal": self.optimal,
            "removed_outputs": self.removed_outputs,
        }
        row.update(extra)
        return row


def target_from_ratio(query: ConjunctiveQuery, database: Database, ratio: float) -> int:
    """``k = ceil(ρ · |Q(D)|)`` with the implicit bound ``k >= 1``."""
    total = evaluate(query, database).output_count()
    if total == 0:
        raise ValueError(f"{query.name} has an empty result; cannot pick k from a ratio")
    return ratio_target(total, ratio)


def run_method(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    method: str,
    bruteforce_max_candidates: int = 40,
    session: Optional[Session] = None,
) -> MethodRun:
    """Run one method on one instance and record time + quality.

    Runs through a :class:`~repro.session.Session`: pass one explicitly to
    share caches across a whole grid, otherwise the database's implicit
    default session is used (matching the old global-cache behaviour).

    ``method`` is one of :data:`METHODS`:

    * ``"exact"``            -- ComputeADP, reporting mode;
    * ``"exact-counting"``   -- ComputeADP, counting-only mode;
    * ``"greedy"``           -- ComputeADP with GreedyForCQ at hard leaves;
    * ``"drastic"``          -- ComputeADP with DrasticGreedyForFullCQ;
    * ``"bruteforce"``       -- subset enumeration (small instances only).
    """
    run_session = session if session is not None else default_session(database)
    prepared = run_session.prepare(query)
    output_size = run_session.output_size(prepared)

    def solve() -> ADPSolution:
        if method == "bruteforce":
            with run_session.activate():
                return bruteforce_solve(
                    query, database, k, max_candidates=bruteforce_max_candidates
                )
        if method == "exact":
            return run_session.solve(prepared, k)
        if method == "exact-counting":
            return run_session.solve(prepared, k, counting_only=True)
        if method == "greedy":
            return run_session.solve(prepared, k, heuristic="greedy")
        if method == "drastic":
            return run_session.solve(prepared, k, heuristic="drastic")
        raise ValueError(f"unknown method {method!r} (expected one of {METHODS})")

    solution, seconds = timed(solve)
    assert isinstance(solution, ADPSolution)
    return MethodRun(
        method=method,
        k=k,
        output_size=output_size,
        seconds=seconds,
        solution_size=solution.size,
        optimal=solution.optimal,
        removed_outputs=solution.removed_outputs,
    )


@dataclass
class ExperimentResult:
    """A tidy table of rows for one figure of the paper."""

    figure: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, row: Dict[str, object]) -> None:
        """Append one row."""
        self.rows.append(row)

    def columns(self) -> List[str]:
        """Column names, in first-seen order across all rows."""
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def series(self, group_by: str, x: str, y: str) -> Dict[object, List[Tuple[object, object]]]:
        """Pivot the rows into plot series ``{group: [(x, y), ...]}``."""
        series: Dict[object, List[Tuple[object, object]]] = {}
        for row in self.rows:
            series.setdefault(row.get(group_by), []).append((row.get(x), row.get(y)))
        return series

    def filter(self, **criteria) -> List[Dict[str, object]]:
        """Rows matching all the given column values."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]
