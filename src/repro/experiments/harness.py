"""Generic experiment plumbing.

Every figure of the paper ultimately reports, for a grid of parameters
(input size, removal ratio ρ, skew α, query, method), one of two quantities:

* the **running time** of a method, or
* the **quality** of its solution (number of input tuples removed).

:func:`run_method` produces both for a single grid point, and
:class:`ExperimentResult` is the tidy table the figure functions return.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.adp import ratio_target
from repro.core.bruteforce import bruteforce_solve
from repro.core.solution import ADPSolution
from repro.data.database import Database
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery
from repro.session import Session, default_session

#: Method names accepted by :func:`run_method` (the names used in the plots).
METHODS = ("exact", "exact-counting", "greedy", "drastic", "bruteforce")

#: Harness-wide default parallelism (``repro experiments --workers N``).
#: 1 keeps every figure table bit-stable with the pre-parallel harness.
_DEFAULT_WORKERS = 1

#: How many parallel grid sessions (each owning a worker pool) stay open at
#: once; the oldest is closed when the bound is hit, so a many-database grid
#: never accumulates idle worker processes.
_MAX_PARALLEL_SESSIONS = 4

#: Bounded ``id(database) -> Session`` cache of parallel grid sessions.
#: Deliberately *strong* references in insertion order: the session keeps
#: its database alive while cached (a weak-key map would be immortal here,
#: since the session value references its own key), and eviction/closure is
#: explicit.
_PARALLEL_SESSIONS: "OrderedDict[int, Session]" = OrderedDict()


def set_default_workers(workers: int) -> None:
    """Set the worker count used by :func:`run_method` when no session is given.

    Closes previously created parallel harness sessions when switching,
    and ``set_default_workers(1)`` *always* releases them -- it doubles as
    the explicit cleanup call for sessions created via per-call
    ``run_method(..., workers=N)``, so worker pools never outlive the code
    that wanted them.
    """
    global _DEFAULT_WORKERS
    workers = max(1, int(workers))
    if workers != _DEFAULT_WORKERS or workers <= 1:
        for session in _PARALLEL_SESSIONS.values():
            session.close()
        _PARALLEL_SESSIONS.clear()
    _DEFAULT_WORKERS = workers


def _harness_session(database: Database, workers: Optional[int]) -> Session:
    """The session a grid point runs through (honoring the workers setting)."""
    effective = _DEFAULT_WORKERS if workers is None else max(1, int(workers))
    if effective <= 1:
        return default_session(database)
    key = id(database)
    # While an entry exists its session pins the database alive, so id()
    # cannot have been reused for a live key.
    session = _PARALLEL_SESSIONS.get(key)
    if session is not None and (session._closed or session.workers != effective):
        if not session._closed:
            session.close()  # don't leak the displaced session's worker pool
        del _PARALLEL_SESSIONS[key]
        session = None
    if session is None:
        session = Session(database, workers=effective)
        _PARALLEL_SESSIONS[key] = session
        while len(_PARALLEL_SESSIONS) > _MAX_PARALLEL_SESSIONS:
            _key, oldest = _PARALLEL_SESSIONS.popitem(last=False)
            oldest.close()
    return session


def grid_session(database: Database) -> Session:
    """The session a figure function should bind its grid to.

    Honors ``repro experiments --workers N`` (:func:`set_default_workers`):
    serial runs get a fresh plain :class:`Session` (bit-stable with the
    pre-parallel harness), parallel runs share pooled sessions from the
    bounded cache.
    """
    if _DEFAULT_WORKERS <= 1:
        return Session(database)
    return _harness_session(database, None)


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once and return ``(result, elapsed seconds)``."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, elapsed


@dataclass
class MethodRun:
    """Outcome of one (query, database, k, method) grid point."""

    method: str
    k: int
    output_size: int
    seconds: float
    solution_size: int
    optimal: bool
    removed_outputs: int

    def as_row(self, **extra) -> Dict[str, object]:
        """The run as a flat report row, with extra grid parameters merged in."""
        row = {
            "method": self.method,
            "k": self.k,
            "output_size": self.output_size,
            "seconds": round(self.seconds, 6),
            "solution_size": self.solution_size,
            "optimal": self.optimal,
            "removed_outputs": self.removed_outputs,
        }
        row.update(extra)
        return row


def target_from_ratio(query: ConjunctiveQuery, database: Database, ratio: float) -> int:
    """``k = ceil(ρ · |Q(D)|)`` with the implicit bound ``k >= 1``."""
    total = evaluate(query, database).output_count()
    if total == 0:
        raise ValueError(f"{query.name} has an empty result; cannot pick k from a ratio")
    return ratio_target(total, ratio)


def run_method(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    method: str,
    bruteforce_max_candidates: int = 40,
    session: Optional[Session] = None,
    workers: Optional[int] = None,
) -> MethodRun:
    """Run one method on one instance and record time + quality.

    Runs through a :class:`~repro.session.Session`: pass one explicitly to
    share caches across a whole grid, otherwise the database's implicit
    default session is used (matching the old global-cache behaviour).
    ``workers`` (or the harness-wide :func:`set_default_workers` setting,
    i.e. ``repro experiments --workers N``) routes the grid point through a
    shared parallel session instead; the default of 1 keeps figure tables
    bit-stable.

    ``method`` is one of :data:`METHODS`:

    * ``"exact"``            -- ComputeADP, reporting mode;
    * ``"exact-counting"``   -- ComputeADP, counting-only mode;
    * ``"greedy"``           -- ComputeADP with GreedyForCQ at hard leaves;
    * ``"drastic"``          -- ComputeADP with DrasticGreedyForFullCQ;
    * ``"bruteforce"``       -- subset enumeration (small instances only).
    """
    run_session = (
        session if session is not None else _harness_session(database, workers)
    )
    prepared = run_session.prepare(query)
    output_size = run_session.output_size(prepared)

    def solve() -> ADPSolution:
        if method == "bruteforce":
            with run_session.activate():
                return bruteforce_solve(
                    query, database, k, max_candidates=bruteforce_max_candidates
                )
        if method == "exact":
            return run_session.solve(prepared, k)
        if method == "exact-counting":
            return run_session.solve(prepared, k, counting_only=True)
        if method == "greedy":
            return run_session.solve(prepared, k, heuristic="greedy")
        if method == "drastic":
            return run_session.solve(prepared, k, heuristic="drastic")
        raise ValueError(f"unknown method {method!r} (expected one of {METHODS})")

    solution, seconds = timed(solve)
    assert isinstance(solution, ADPSolution)
    return MethodRun(
        method=method,
        k=k,
        output_size=output_size,
        seconds=seconds,
        solution_size=solution.size,
        optimal=solution.optimal,
        removed_outputs=solution.removed_outputs,
    )


@dataclass
class ExperimentResult:
    """A tidy table of rows for one figure of the paper."""

    figure: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add(self, row: Dict[str, object]) -> None:
        """Append one row."""
        # ExperimentResult.rows is this result table's own list of figure
        # rows, not an interned relation column; nothing shares it.
        self.rows.append(row)  # repro: noqa REP002 -- local result table, not an interned column

    def columns(self) -> List[str]:
        """Column names, in first-seen order across all rows."""
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def series(self, group_by: str, x: str, y: str) -> Dict[object, List[Tuple[object, object]]]:
        """Pivot the rows into plot series ``{group: [(x, y), ...]}``."""
        series: Dict[object, List[Tuple[object, object]]] = {}
        for row in self.rows:
            series.setdefault(row.get(group_by), []).append((row.get(x), row.get(y)))
        return series

    def filter(self, **criteria) -> List[Dict[str, object]]:
        """Rows matching all the given column values."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]
