"""One experiment function per figure of the paper (Figures 7--29).

Each function regenerates the corresponding figure's data as an
:class:`~repro.experiments.harness.ExperimentResult` (a tidy table that can
be pivoted into the paper's plot series).  Default parameters are scaled down
to pure-Python-friendly sizes; pass larger ``sizes`` / ``ratios`` to approach
the paper's scale.  The reproduced claim is the *shape* of each figure --
which method is faster, how time/quality scale with input size, ρ and α --
not the absolute Java+PostgreSQL numbers (see DESIGN.md and EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.adp import ADPSolver
from repro.core.decompose import DecomposeStrategy
from repro.core.selection import Selection, solve_with_selection
from repro.core.universe import UniverseStrategy
from repro.experiments.harness import (
    ExperimentResult,
    grid_session,
    run_method,
    target_from_ratio,
    timed,
)
from repro.workloads.queries import Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, QPATH_EXP
from repro.workloads.snap import EgoNetworkConfig, generate_ego_network
from repro.workloads.synthetic import generate_q7_instance, generate_q8_instance
from repro.workloads.tpch import SELECTED_PART_KEY, generate_tpch
from repro.workloads.zipf import generate_zipf_path

DEFAULT_RATIOS = (0.1, 0.25, 0.5, 0.75)


# --------------------------------------------------------------------------- #
# Figures 7-9: σθQ1 (poly-time thanks to the selection, Lemma 12)
# --------------------------------------------------------------------------- #
def _selected_instance(size: int, seed: int = 7):
    database = generate_tpch(total_tuples=size, seed=seed)
    selection = Selection.equals({"PK": SELECTED_PART_KEY})
    filtered = selection.apply(Q1, database)
    return database, selection, filtered


def figure_07_easy_exact(
    sizes: Sequence[int] = (200, 500, 1000),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figure 7: running time of the exact algorithm on σθQ1.

    Compares the counting and reporting versions across input sizes and
    removal ratios ρ.
    """
    result = ExperimentResult(
        figure="Figure 7",
        description="Running time: sigma_theta Q1 (easy) solved exactly, counting vs reporting",
    )
    for size in sizes:
        database, selection, filtered = _selected_instance(size)
        base_session = grid_session(database)
        output = grid_session(filtered).output_size(Q1)
        for ratio in ratios:
            k = max(1, int(ratio * output)) if output else 0
            if k == 0:
                continue
            for mode, counting in (("reporting", False), ("counting", True)):
                solver = ADPSolver(counting_only=counting)

                def run(s=solver, k=k):
                    with base_session.activate():
                        return solve_with_selection(Q1, selection, database, k, solver=s)

                solution, seconds = timed(run)
                result.add(
                    {
                        "input_size": database.total_tuples(),
                        "selected_output": output,
                        "ratio": ratio,
                        "mode": mode,
                        "k": k,
                        "seconds": round(seconds, 6),
                        "solution_size": solution.size,
                        "optimal": solution.optimal,
                    }
                )
    return result


def figure_08_easy_heuristics(
    sizes: Sequence[int] = (200, 500, 1000),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figure 8: reporting σθQ1 with heuristics (Greedy, Drastic) vs Exact."""
    result = ExperimentResult(
        figure="Figure 8",
        description="Running time: reporting sigma_theta Q1 (easy) by heuristics vs exact",
    )
    for size in sizes:
        database, selection, filtered = _selected_instance(size)
        base_session = grid_session(database)
        filtered_session = grid_session(filtered)
        output = filtered_session.output_size(Q1)
        for ratio in ratios:
            k = max(1, int(ratio * output)) if output else 0
            if k == 0:
                continue
            exact_solver = ADPSolver()

            def run_exact(k=k):
                with base_session.activate():
                    return solve_with_selection(Q1, selection, database, k, solver=exact_solver)

            exact, exact_seconds = timed(run_exact)
            rows = [("exact", exact, exact_seconds)]
            for method in ("greedy", "drastic"):
                run = run_method(Q1, filtered, k, method, session=filtered_session)
                rows.append((method, run, run.seconds))
            for method, solved, seconds in rows:
                size_value = solved.size if hasattr(solved, "size") else solved.solution_size
                result.add(
                    {
                        "input_size": database.total_tuples(),
                        "ratio": ratio,
                        "k": k,
                        "method": method,
                        "seconds": round(seconds, 6),
                        "solution_size": size_value,
                    }
                )
    return result


def figure_09_easy_quality(
    sizes: Sequence[int] = (200, 500, 1000),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figure 9: solution quality on σθQ1 (Exact vs Greedy vs Drastic)."""
    data = figure_08_easy_heuristics(sizes, ratios)
    result = ExperimentResult(
        figure="Figure 9",
        description="Quality: sigma_theta Q1 (easy); number of tuples removed per method",
        rows=list(data.rows),
        notes="Same grid as Figure 8; read the solution_size column.",
    )
    return result


# --------------------------------------------------------------------------- #
# Figures 10-13: Q1 without selection (NP-hard)
# --------------------------------------------------------------------------- #
def figure_10_hard_heuristics(
    sizes: Sequence[int] = (200, 500, 1000),
    ratios: Sequence[float] = DEFAULT_RATIOS,
    methods: Sequence[str] = ("greedy", "drastic"),
) -> ExperimentResult:
    """Figures 10: running time of Greedy/Drastic on the NP-hard Q1."""
    result = ExperimentResult(
        figure="Figure 10",
        description="Running time: reporting Q1 (hard) by heuristics",
    )
    for size in sizes:
        database = generate_tpch(total_tuples=size)
        session = grid_session(database)
        output = session.output_size(Q1)
        for ratio in ratios:
            k = max(1, int(ratio * output))
            for method in methods:
                run = run_method(Q1, database, k, method, session=session)
                result.add(
                    run.as_row(input_size=database.total_tuples(), ratio=ratio, query="Q1")
                )
    return result


def figure_11_hard_quality(
    sizes: Sequence[int] = (200, 500, 1000),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figure 11: solution quality of Greedy vs Drastic on Q1."""
    data = figure_10_hard_heuristics(sizes, ratios)
    return ExperimentResult(
        figure="Figure 11",
        description="Quality: Q1 (hard) by heuristics; number of tuples removed",
        rows=list(data.rows),
        notes="Same grid as Figure 10; read the solution_size column.",
    )


def figure_12_13_bruteforce(
    size: int = 60,
    ratio: float = 0.1,
    methods: Sequence[str] = ("bruteforce", "greedy", "drastic"),
) -> ExperimentResult:
    """Figures 12-13: BruteForce vs heuristics on a small Q1 instance."""
    result = ExperimentResult(
        figure="Figures 12-13",
        description="BruteForce vs heuristics on Q1 (hard), small input",
    )
    database = generate_tpch(total_tuples=size)
    session = grid_session(database)
    with session.activate():
        k = target_from_ratio(Q1, database, ratio)
    for method in methods:
        run = run_method(
            Q1, database, k, method, bruteforce_max_candidates=2000, session=session
        )
        result.add(run.as_row(input_size=database.total_tuples(), ratio=ratio, query="Q1"))
    return result


# --------------------------------------------------------------------------- #
# Figures 14-15: the SNAP ego-network queries Q2..Q5
# --------------------------------------------------------------------------- #
def figure_14_15_snap(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    nodes: int = 60,
    seed: int = 414,
    max_witnesses: Optional[int] = None,
) -> ExperimentResult:
    """Figures 14-15: Greedy (Q2..Q5) and Drastic (Q2, Q3) on the ego network.

    Drastic is only applicable to the full CQs Q2 and Q3; Q4 and Q5 have
    projections, exactly as discussed in Section 8.3.
    """
    result = ExperimentResult(
        figure="Figures 14-15",
        description="Running time and quality on the ego network: Q2, Q3, Q4, Q5",
    )
    edges = generate_ego_network(EgoNetworkConfig(nodes=nodes, seed=seed))
    plans = [
        (Q2, ("greedy", "drastic")),
        (Q3, ("greedy", "drastic")),
        (Q4, ("greedy",)),
        (Q5, ("greedy",)),
    ]
    for query, methods in plans:
        # The edge relations are stored as Ri(A, B); each query names its
        # variables differently, so align columns positionally first.
        database = edges.aligned_to(query)
        session = grid_session(database)
        output = session.output_size(query)
        if output == 0:
            continue
        for ratio in ratios:
            k = max(1, int(ratio * output))
            for method in methods:
                run = run_method(query, database, k, method, session=session)
                result.add(run.as_row(query=query.name, ratio=ratio, nodes=nodes))
    return result


# --------------------------------------------------------------------------- #
# Figures 16-27: Zipfian data distributions
# --------------------------------------------------------------------------- #
def figure_zipf_hard(
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    sizes: Sequence[int] = (200, 400),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figures 16-19 and 24-27: Qpath (hard) on Zipf(α) data, Greedy & Drastic."""
    result = ExperimentResult(
        figure="Figures 16-19, 24-27",
        description="Qpath (hard) on Zipfian data: running time and quality vs alpha",
    )
    for alpha in alphas:
        for size in sizes:
            database = generate_zipf_path(r2_tuples=size, alpha=alpha)
            session = grid_session(database)
            output = session.output_size(QPATH_EXP)
            for ratio in ratios:
                k = max(1, int(ratio * output))
                for method in ("greedy", "drastic"):
                    run = run_method(QPATH_EXP, database, k, method, session=session)
                    result.add(
                        run.as_row(
                            alpha=alpha,
                            r2_size=size,
                            input_size=database.total_tuples(),
                            ratio=ratio,
                            query="Qpath",
                        )
                    )
    return result


def figure_zipf_easy(
    alphas: Sequence[float] = (0.0, 1.0),
    sizes: Sequence[int] = (200, 400),
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    """Figures 20-23: the singleton query Q6 (easy) on Zipf(α) data, Exact."""
    result = ExperimentResult(
        figure="Figures 20-23",
        description="Q6 (easy singleton) on Zipfian data: exact running time and quality",
    )
    for alpha in alphas:
        for size in sizes:
            database = generate_zipf_path(r2_tuples=size, alpha=alpha)
            q6_database = database.restricted_to(("R1", "R2"))
            session = grid_session(q6_database)
            output = session.output_size(Q6)
            for ratio in ratios:
                k = max(1, int(ratio * output))
                run = run_method(Q6, q6_database, k, "exact", session=session)
                result.add(
                    run.as_row(
                        alpha=alpha,
                        r2_size=size,
                        input_size=q6_database.total_tuples(),
                        ratio=ratio,
                        query="Q6",
                    )
                )
    return result


# --------------------------------------------------------------------------- #
# Figure 28: Universe / Singleton optimisation ablation (Q7)
# --------------------------------------------------------------------------- #
def figure_28_singleton_optimisation(
    tuples_per_relation: int = 60,
    domain: int = 25,
    ratios: Sequence[float] = (0.5, 0.75),
    seed: int = 28,
) -> ExperimentResult:
    """Figure 28: removing universal attributes one-by-one vs combined vs Singleton.

    The three strategies produce identical objective values (they are all
    exact); the figure compares their running times.
    """
    result = ExperimentResult(
        figure="Figure 28",
        description="Q7: universal-attribute strategies (one-by-one, combined, singleton)",
    )
    database = generate_q7_instance(tuples_per_relation, domain=domain, seed=seed)
    session = grid_session(database)
    output = session.output_size(Q7)
    strategies = (
        ("one-by-one", ADPSolver(use_singleton=False, universe_strategy=UniverseStrategy.ONE_BY_ONE)),
        ("combined", ADPSolver(use_singleton=False, universe_strategy=UniverseStrategy.COMBINED)),
        ("singleton", ADPSolver(use_singleton=True)),
    )
    for ratio in ratios:
        k = max(1, int(ratio * output))
        for name, solver in strategies:
            solution, seconds = timed(
                lambda s=solver, k=k: session.solve(Q7, k, solver=s)
            )
            result.add(
                {
                    "strategy": name,
                    "ratio": ratio,
                    "k": k,
                    "output_size": output,
                    "seconds": round(seconds, 6),
                    "solution_size": solution.size,
                    "optimal": solution.optimal,
                }
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 29: Decompose optimisation ablation (Q8)
# --------------------------------------------------------------------------- #
def figure_29_decompose_optimisation(
    unary_tuples: int = 8,
    binary_tuples: int = 16,
    ratios: Sequence[float] = (0.01, 0.1),
    seed: int = 29,
) -> ExperimentResult:
    """Figure 29: Decompose strategies (full enumeration, pairwise, improved DP)."""
    result = ExperimentResult(
        figure="Figure 29",
        description="Q8: decomposition strategies (full enumeration, pairwise, improved DP)",
    )
    database = generate_q8_instance(unary_tuples, binary_tuples, seed=seed)
    session = grid_session(database)
    output = session.output_size(Q8)
    strategies = (
        ("full-enumeration", DecomposeStrategy.FULL_ENUMERATION),
        ("pairwise", DecomposeStrategy.PAIRWISE),
        ("improved-dp", DecomposeStrategy.IMPROVED_DP),
    )
    for ratio in ratios:
        k = max(1, int(ratio * output))
        for name, strategy in strategies:
            solver = ADPSolver(decompose_strategy=strategy)
            solution, seconds = timed(
                lambda s=solver, k=k: session.solve(Q8, k, solver=s)
            )
            result.add(
                {
                    "strategy": name,
                    "ratio": ratio,
                    "k": k,
                    "output_size": output,
                    "seconds": round(seconds, 6),
                    "solution_size": solution.size,
                    "optimal": solution.optimal,
                }
            )
    return result


# --------------------------------------------------------------------------- #
# Ablation beyond the paper: greedy candidate restriction (Lemma 13)
# --------------------------------------------------------------------------- #
def ablation_endogenous_restriction(
    size: int = 300,
    ratios: Sequence[float] = (0.1, 0.5),
) -> ExperimentResult:
    """Design-choice ablation: greedy over endogenous-only vs all relations."""
    from repro.core.greedy import greedy_curve

    result = ExperimentResult(
        figure="Ablation",
        description="GreedyForCQ candidates: endogenous-only (Lemma 13) vs all relations",
    )
    database = generate_tpch(total_tuples=size)
    session = grid_session(database)
    output = session.output_size(Q1)
    for ratio in ratios:
        k = max(1, int(ratio * output))
        for restricted in (True, False):
            def run():
                with session.activate():
                    curve = greedy_curve(Q1, database, kmax=k, endogenous_only=restricted)
                    return curve.cost(k)

            cost, seconds = timed(run)
            result.add(
                {
                    "endogenous_only": restricted,
                    "ratio": ratio,
                    "k": k,
                    "seconds": round(seconds, 6),
                    "solution_size": cost,
                }
            )
    return result


#: All figure functions keyed by a short identifier (used by run_all / docs).
FIGURE_FUNCTIONS = {
    "fig07": figure_07_easy_exact,
    "fig08": figure_08_easy_heuristics,
    "fig09": figure_09_easy_quality,
    "fig10": figure_10_hard_heuristics,
    "fig11": figure_11_hard_quality,
    "fig12_13": figure_12_13_bruteforce,
    "fig14_15": figure_14_15_snap,
    "fig16_27": figure_zipf_hard,
    "fig20_23": figure_zipf_easy,
    "fig28": figure_28_singleton_optimisation,
    "fig29": figure_29_decompose_optimisation,
    "ablation_endogenous": ablation_endogenous_restriction,
}


def run_all(quick: bool = True) -> Dict[str, ExperimentResult]:
    """Run every figure experiment and return the results keyed by figure id.

    ``quick=True`` (default) uses reduced grids so the whole sweep finishes
    in a few minutes on a laptop; ``quick=False`` uses each function's
    default parameters.
    """
    overrides: Dict[str, Dict[str, object]] = {}
    if quick:
        overrides = {
            "fig07": {"sizes": (200, 500), "ratios": (0.1, 0.5)},
            "fig08": {"sizes": (200, 500), "ratios": (0.1, 0.5)},
            "fig09": {"sizes": (200,), "ratios": (0.1, 0.5)},
            "fig10": {"sizes": (200, 500), "ratios": (0.1, 0.5)},
            "fig11": {"sizes": (200,), "ratios": (0.1, 0.5)},
            "fig14_15": {"ratios": (0.1, 0.5), "nodes": 40},
            "fig16_27": {"alphas": (0.0, 1.0), "sizes": (200,), "ratios": (0.1, 0.5)},
            "fig20_23": {"sizes": (200,), "ratios": (0.1, 0.5)},
            "fig28": {"ratios": (0.5,)},
            "fig29": {"ratios": (0.01, 0.1)},
        }
    results: Dict[str, ExperimentResult] = {}
    for key, fn in FIGURE_FUNCTIONS.items():
        results[key] = fn(**overrides.get(key, {}))
    return results
