"""Greedy heuristics for NP-hard queries (Section 7.4).

Two heuristics are implemented:

* :func:`greedy_curve` -- ``GreedyForCQ`` (Algorithm 6): repeatedly delete
  the input tuple that removes the most still-alive output tuples, restricted
  (by default) to endogenous relations, which is justified by Lemma 13.  The
  picks do not depend on the target ``k``, so a single run produces a full
  :class:`~repro.core.curves.PrefixCurve`.  Compared to the paper's pseudo
  code, ties on the number of removed outputs are broken by the number of
  removed *witnesses* (full-join rows); this refinement matters only when all
  profits are zero (e.g. boolean queries, where several tuples must fall
  before the single output disappears) and never changes the behaviour on
  full CQs.

* :func:`drastic_curve` -- ``DrasticGreedyForFullCQ`` (Algorithm 7): for each
  endogenous relation, compute every tuple's profit once (for a full CQ the
  witnesses removed by tuples of the same relation are disjoint outputs),
  sort decreasingly, and take the shortest prefix reaching ``k``; the
  relation giving the smallest prefix wins.  Only valid for full CQs -- with
  projections the per-relation profits are no longer additive, which is why
  the paper (and this library) refuse to apply it there.

Both heuristics run on the columnar engine's packed provenance: candidates
are dense ref IDs scanned through :class:`~repro.engine.provenance.
ProvenanceIndex`'s integer API, and the scan prunes with the invariant
``profit(t) <= witness_gain(t)`` (the witness gain is maintained
incrementally and is O(1) to read), which skips the expensive profit
computation for candidates that provably cannot beat the current best.  The
pruning never changes which tuple is picked, so the produced curves are
identical to the row engine's.

``GreedyForCQ`` achieves an ``O(log k)`` approximation on full CQs (it is the
greedy partial-set-cover algorithm of Theorem 5); neither heuristic has a
guarantee in the presence of projections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.curves import MinCurve, PrefixCurve
from repro.core.structures import endogenous_relations
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.backend import backend_of_column
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.engine.provenance import ProvenanceIndex
from repro.obs.trace import span
from repro.query.cq import ConjunctiveQuery


def greedy_curve(
    query: ConjunctiveQuery,
    database: Database,
    kmax: Optional[int] = None,
    endogenous_only: bool = True,
) -> PrefixCurve:
    """``GreedyForCQ`` as a cost curve (heuristic, ``optimal=False``).

    Parameters
    ----------
    query, database:
        The instance.
    kmax:
        Stop once at least ``kmax`` outputs have been removed; defaults to
        all of ``|Q(D)|``.
    endogenous_only:
        Restrict candidate deletions to endogenous relations (Lemma 13).
        Setting this to ``False`` reproduces the unrestricted variant used in
        the ablation benchmark.
    """
    result = evaluate(query, database)
    total = result.output_count()
    if total == 0:
        return PrefixCurve([], optimal=True)
    target = total if kmax is None else min(kmax, total)

    picks: List[Tuple[Tuple[TupleRef, ...], int]] = []
    pending: List[TupleRef] = []
    removed_outputs = 0
    batch_profits = False
    with span("solver.greedy") as gsp:
        with span("engine.provenance.index") as isp:
            index = ProvenanceIndex(result)
            if isp:
                isp.set(refs=index.ref_count(), outputs=total)
        if endogenous_only:
            allowed = set(endogenous_relations(query))
            candidates = [
                rid
                for rid in range(index.ref_count())
                if index.ref_at(rid).relation in allowed
            ]
        else:
            candidates = list(range(index.ref_count()))
        candidates.sort(key=lambda rid: repr(index.ref_at(rid)))
        if gsp:
            gsp.set(target=target, candidates=len(candidates))
        while removed_outputs < target:
            best_rid = -1
            best_profit = -1
            best_gain = -1
            exhausted: Optional[List[int]] = None
            # One batched gather per round (a NumPy `take` on the vectorized
            # index) instead of one scalar witness_gain_id call per candidate.
            gains = index.gains_for(candidates)
            profit_calls = 0
            profits = index.profits_for(candidates) if batch_profits else None
            if profits is not None:
                # Batched scan: profits for every candidate were computed in
                # one group-by; the pick is the earliest candidate maximizing
                # (profit, gain) -- exactly what the pruned scan selects.
                for position, rid in enumerate(candidates):
                    gain = gains[position]
                    if gain == 0:
                        if exhausted is None:
                            exhausted = []
                        exhausted.append(rid)
                        continue
                    profit = profits[position]
                    if profit > best_profit or (
                        profit == best_profit and gain > best_gain
                    ):
                        best_profit = profit
                        best_gain = gain
                        best_rid = rid
            else:
                for rid, gain in zip(candidates, gains):
                    if gain == 0:
                        # All witnesses of this tuple are already dead (in
                        # particular every previously picked tuple): it can
                        # never make progress again, so drop it from future
                        # scans.
                        if exhausted is None:
                            exhausted = []
                        exhausted.append(rid)
                        continue
                    # profit <= witness gain, so a candidate whose gain cannot
                    # beat the incumbent key (profit, gain) cannot be
                    # selected: skip the profit computation.  This never
                    # changes the picked tuple.
                    if gain < best_profit or (
                        gain == best_profit and gain <= best_gain
                    ):
                        continue
                    profit = index.profit_id(rid)
                    profit_calls += 1
                    if profit > best_profit or (
                        profit == best_profit and gain > best_gain
                    ):
                        best_profit = profit
                        best_gain = gain
                        best_rid = rid
                # Projections blunt the witness-gain pruning bound (gains stay
                # large while profits collapse), degenerating the scan into
                # one profit query per candidate per round; from the round
                # where that happens, a single batched group-by is cheaper.
                # Both scans pick the same tuple, so the curve is unchanged.
                if profit_calls > max(256, len(candidates) // 4):
                    batch_profits = True
            if exhausted:
                dead = set(exhausted)
                candidates = [rid for rid in candidates if rid not in dead]
            if best_rid < 0:
                # No candidate can make progress (can only happen when
                # candidates are restricted and exogenous tuples would be
                # needed, which Lemma 13 rules out; guarded for safety).
                break
            gained = index.remove_id(best_rid)
            removed_outputs += gained
            best_ref = index.ref_at(best_rid)
            if gained > 0:
                picks.append((tuple(pending) + (best_ref,), gained))
                pending = []
            else:
                pending.append(best_ref)
        if gsp:
            gsp.set(picks=len(picks), removed_outputs=removed_outputs)
    return PrefixCurve(picks, optimal=False)


def drastic_curve(
    query: ConjunctiveQuery,
    database: Database,
) -> MinCurve:
    """``DrasticGreedyForFullCQ`` as a cost curve (heuristic).

    Raises ``ValueError`` when the query has projections (non-output
    attributes): the per-relation profit bookkeeping is only additive for
    full CQs.
    """
    if not query.is_full:
        raise ValueError(
            "DrasticGreedyForFullCQ only applies to full CQs "
            f"({query.name} has existential attributes "
            f"{sorted(query.existential_attributes)})"
        )
    result = evaluate(query, database)
    if result.output_count() == 0:
        return MinCurve([PrefixCurve([], optimal=True)], optimal=True)

    # For a full CQ every witness is a distinct output tuple, so a tuple's
    # profit is simply the number of witnesses it participates in, and tuples
    # of the same relation remove disjoint outputs.
    with span("solver.drastic") as dsp:
        profits: Dict[str, Dict[TupleRef, int]] = {}
        prov = result.provenance
        if prov is not None:
            # Per-atom profit histogram through the backend's bincount kernel
            # (np.bincount over the packed tid column; a C-speed list
            # accumulation on the Python backend) -- no per-witness dict churn.
            for position, name in enumerate(prov.atom_names):
                column = prov.ref_columns[position]
                backend = backend_of_column(column)
                counts = backend.bincount(column, len(prov.indexes[position]))
                view = prov.refs_for_atom(position)
                if backend.is_numpy:
                    nonzero = backend.np.nonzero(counts)[0]
                    profits[name] = {
                        view[tid]: int(counts[tid]) for tid in nonzero.tolist()
                    }
                else:
                    profits[name] = {
                        view[tid]: count
                        for tid, count in enumerate(counts)
                        if count
                    }
            witness_count = prov.witness_count()
            for vacuum_ref in prov.vacuum_refs:
                profits[vacuum_ref.relation] = {vacuum_ref: witness_count}
        else:
            for witness in result.witnesses:
                for ref in witness.refs:
                    profits.setdefault(ref.relation, {})
                    profits[ref.relation][ref] = (
                        profits[ref.relation].get(ref, 0) + 1
                    )

        curves: List[PrefixCurve] = []
        for relation_name in endogenous_relations(query):
            per_tuple = profits.get(relation_name, {})
            picks = [((ref,), profit) for ref, profit in per_tuple.items()]
            picks.sort(key=lambda pick: (-pick[1], repr(pick[0])))
            curves.append(PrefixCurve(picks, optimal=False))
        if not curves:  # pragma: no cover - every query has an endogenous relation
            curves.append(PrefixCurve([], optimal=False))
        if dsp:
            dsp.set(relations=len(curves))
        return MinCurve(curves, optimal=False)
