"""``ComputeADP``: the unified ADP solver (Section 7, Algorithm 2).

:class:`ADPSolver` dispatches exactly like Algorithm 2:

1. **Boolean** query -- resilience via the min-cut construction of
   Section 7.1 when the query is triad-free and linearizable, otherwise the
   greedy heuristic (the solution is then flagged as not guaranteed optimal);
2. **Singleton** query (Definition 10) -- the sorting algorithm of
   Section 7.2 (can be disabled via ``use_singleton=False`` to reproduce the
   Figure 28 ablation);
3. query with a **universal attribute** -- the Universe dynamic program
   (Algorithm 4), recursing into this solver for each sub-instance;
4. **disconnected** query -- the Decompose dynamic program (Algorithm 5),
   recursing per connected subquery;
5. otherwise -- the greedy heuristics of Section 7.4 (``GreedyForCQ`` or
   ``DrasticGreedyForFullCQ``), since by Lemma 4 the query is NP-hard.

The solver returns the exact optimum whenever ``IsPtime(Q)`` is true and a
feasible heuristic solution otherwise; the :class:`ADPSolution` it produces
records which case applies (``optimal`` flag and ``method`` string).

Internally every step produces a :class:`~repro.core.curves.CostCurve`
(solutions for all targets up to ``k``), because the Universe/Decompose
dynamic programs need the costs of sub-problems for many targets at once.

All evaluation goes through the columnar witness engine
(:mod:`repro.engine.evaluate`) in the *ambient engine context*: under
``Session.solve`` that is the session's own cache/engine/interners, outside
any session the per-database default context.  The solver is engine-mode
agnostic by construction: a ``parallel`` context may serve any of these
evaluations from the sharded executor (:mod:`repro.parallel`), whose merged
results are byte-identical to the serial columnar engine's, so every
algorithm below -- including greedy tie-breaking over witness order -- is
unaffected by the degree of parallelism.  One :class:`QueryResult` is
threaded through sizing, feasibility and verification
(:meth:`ADPSolver.solve_in_context`), and the re-evaluations of identical
sub-instances inside the Universe/Decompose recursions are served from the
memoizing evaluation cache rather than re-joining.

The ``(query, database, k)`` call forms -- :meth:`ADPSolver.solve`,
:meth:`ADPSolver.solve_ratio`, :func:`compute_adp` -- are deprecated shims
over the implicit default session; prefer
:meth:`repro.session.Session.solve`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core import greedy as greedy_module
from repro.core.boolean_cq import linear_order, min_cut_curve
from repro.core.curves import INFEASIBLE, CostCurve, constant_zero_curve
from repro.core.decidability import is_poly_time
from repro.core.decompose import DecomposeStrategy, decompose_curve
from repro.core.singleton import is_singleton, singleton_curve
from repro.core.solution import ADPSolution
from repro.core.structures import find_triad_like
from repro.core.universe import UniverseStrategy, universe_curve
from repro.data.database import Database
from repro.engine.evaluate import QueryResult, evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery
from repro.query.graph import QueryGraph

#: Heuristic used at NP-hard leaves ("Greedy" and "Drastic" in the paper's plots).
GREEDY = "greedy"
DRASTIC = "drastic"


def ratio_target(total: int, ratio: float) -> int:
    """``k = max(1, ceil(ratio * total))`` -- the paper's ρ parameter.

    The single home of the ρ-to-``k`` rule (``Session.solve_ratio``, the
    robustness profile and the experiment harness all delegate here).
    Raises ``ValueError`` for ``ratio`` outside ``(0, 1]`` or an empty
    result.
    """
    if not 0 < ratio <= 1:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    if total == 0:
        raise ValueError("the query result is empty; nothing to remove")
    return max(1, math.ceil(ratio * total))


@dataclass
class SolverConfig:
    """Tuning knobs of :class:`ADPSolver` (defaults follow the paper).

    Attributes
    ----------
    heuristic:
        ``"greedy"`` (Algorithm 6) or ``"drastic"`` (Algorithm 7) at NP-hard
        leaves.  Drastic only applies to full CQs; on other leaves the solver
        silently falls back to greedy (recorded in the solution stats).
    use_singleton:
        Enable the Singleton base case (Figure 28 ablation).
    universe_strategy, decompose_strategy:
        Strategies for the two simplification steps (Figures 28 and 29).
    endogenous_only:
        Restrict greedy candidates to endogenous relations (Lemma 13).
    counting_only:
        Report only the objective value (size of the deletion set); the
        ``removed`` set is left empty.  Mirrors the paper's "counting
        version", which is considerably more scalable than "reporting".
    """

    heuristic: str = GREEDY
    use_singleton: bool = True
    universe_strategy: UniverseStrategy = UniverseStrategy.COMBINED
    decompose_strategy: DecomposeStrategy = DecomposeStrategy.IMPROVED_DP
    endogenous_only: bool = True
    counting_only: bool = False

    def __post_init__(self) -> None:
        if self.heuristic not in (GREEDY, DRASTIC):
            raise ValueError(f"unknown heuristic {self.heuristic!r}")


class ADPSolver:
    """The unified ADP solver (``ComputeADP``)."""

    def __init__(self, config: Optional[SolverConfig] = None, **overrides):
        """Create a solver.

        ``overrides`` are convenience keyword arguments forwarded to
        :class:`SolverConfig` (e.g. ``ADPSolver(heuristic="drastic")``).
        """
        if config is not None and overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config or SolverConfig(**overrides)
        self._fallbacks = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, query: ConjunctiveQuery, database: Database, k: int) -> ADPSolution:
        """Solve ``ADP(query, database, k)``.

        .. deprecated::
            Prefer ``Session(database).solve(query, k, solver=...)``; this
            form remains as a shim over the implicit default session of
            ``database`` (see ``docs/MIGRATION.md``).

        Raises ``ValueError`` when ``k`` is outside ``1 <= k <= |Q(D)|``.
        """
        warnings.warn(
            "ADPSolver.solve(query, database, k) is deprecated; use "
            "Session(database).solve(query, k) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.session import default_session

        return default_session(database).solve(query, k, solver=self)

    def solve_in_context(
        self,
        query: ConjunctiveQuery,
        database: Database,
        k: int,
        *,
        result: Optional[QueryResult] = None,
        curve: Optional[CostCurve] = None,
    ) -> ADPSolution:
        """Solve within the ambient engine context (the session entry point).

        ``result`` threads one evaluation through sizing, feasibility and
        verification (instead of three ``evaluate`` calls leaning on the
        cache); ``curve`` lets batched callers reuse a cost curve computed
        once at the batch's largest target.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if result is None:
            result = evaluate(query, database)
        total = result.output_count()
        if k > total:
            raise ValueError(f"k={k} exceeds the number of output tuples |Q(D)|={total}")
        if curve is None:
            self._fallbacks = 0
            curve = self._curve(query, database, k)
        cost = curve.cost(k)
        if cost == INFEASIBLE:
            # Heuristic curves can, in pathological cases, fall short of k
            # even though removing everything would reach it; removing every
            # participating tuple is always a feasible (terrible) solution.
            return self._remove_everything(query, k, total, result)
        if self.config.counting_only:
            removed = frozenset()
            removed_outputs = k
        else:
            removed = curve.solution(k)
            removed_outputs = result.outputs_removed_by(removed)
        return ADPSolution(
            query=query,
            k=k,
            removed=removed,
            removed_outputs=removed_outputs,
            optimal=curve.optimal,
            method="exact" if curve.optimal else self.config.heuristic,
            stats={
                "output_size": total,
                "counting_only": self.config.counting_only,
                "heuristic_fallbacks": self._fallbacks,
            },
            objective=int(cost),
        )

    def curve(
        self, query: ConjunctiveQuery, database: Database, kmax: int
    ) -> CostCurve:
        """The cost curve for all targets up to ``kmax`` (Algorithm 2's spine).

        Every dispatch case of ``ComputeADP`` internally produces solutions
        for *all* targets at once; this publishes that curve.  Runs in the
        ambient engine context -- call through :meth:`repro.session.Session.curve`
        to bind a session's cache.
        """
        if kmax < 0:
            raise ValueError(f"kmax must be non-negative, got {kmax}")
        self._fallbacks = 0
        return self._curve(query, database, kmax)

    def solve_ratio(
        self, query: ConjunctiveQuery, database: Database, ratio: float
    ) -> ADPSolution:
        """Solve with ``k = ceil(ratio * |Q(D)|)`` (the paper's ρ parameter).

        .. deprecated::
            Prefer ``Session(database).solve_ratio(query, ratio, solver=...)``.
        """
        warnings.warn(
            "ADPSolver.solve_ratio(query, database, ratio) is deprecated; "
            "use Session(database).solve_ratio(query, ratio) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.session import default_session

        return default_session(database).solve_ratio(query, ratio, solver=self)

    def is_exact_for(self, query: ConjunctiveQuery) -> bool:
        """Whether this solver returns optimal solutions for ``query``.

        Equivalent to ``IsPtime(query)`` -- the solver is exact exactly on
        the poly-time side of the dichotomy.
        """
        return is_poly_time(query)

    # ------------------------------------------------------------------ #
    # Algorithm 2 dispatch (internal, curve-based)
    # ------------------------------------------------------------------ #
    def _curve(self, query: ConjunctiveQuery, database: Database, kmax: int) -> CostCurve:
        if query.is_boolean:
            return self._boolean_curve(query, database)
        if self.config.use_singleton and is_singleton(query):
            return singleton_curve(query, database)
        if query.universal_attributes():
            return universe_curve(
                query,
                database,
                kmax,
                child_curve=self._curve,
                strategy=self.config.universe_strategy,
            )
        if not QueryGraph(query).is_connected():
            return decompose_curve(
                query,
                database,
                kmax,
                child_curve=self._curve,
                strategy=self.config.decompose_strategy,
            )
        return self._heuristic_curve(query, database, kmax)

    def _boolean_curve(self, query: ConjunctiveQuery, database: Database) -> CostCurve:
        if evaluate(query, database).output_count() == 0:
            return constant_zero_curve()
        if find_triad_like(query) is None:
            order = linear_order(query)
            if order is not None:
                return min_cut_curve(query, database, order)
            # Triad-free but not directly linearizable: the full rewriting of
            # [11] is out of scope (see DESIGN.md); fall back to the greedy
            # heuristic and flag the answer as non-guaranteed.
            self._fallbacks += 1
        return greedy_module.greedy_curve(
            query, database, kmax=1, endogenous_only=self.config.endogenous_only
        )

    def _heuristic_curve(
        self, query: ConjunctiveQuery, database: Database, kmax: int
    ) -> CostCurve:
        if self.config.heuristic == DRASTIC:
            if query.is_full:
                return greedy_module.drastic_curve(query, database)
            self._fallbacks += 1
        return greedy_module.greedy_curve(
            query, database, kmax=kmax, endogenous_only=self.config.endogenous_only
        )

    # ------------------------------------------------------------------ #
    # Last-resort feasible solution
    # ------------------------------------------------------------------ #
    def _remove_everything(
        self, query: ConjunctiveQuery, k: int, total: int, result: QueryResult
    ) -> ADPSolution:
        removed = frozenset(result.participating_refs())
        return ADPSolution(
            query=query,
            k=k,
            removed=frozenset() if self.config.counting_only else removed,
            removed_outputs=total,
            optimal=False,
            method="remove-everything",
            stats={"output_size": total, "counting_only": self.config.counting_only},
            objective=len(removed),
        )


def compute_adp(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    **config_overrides,
) -> ADPSolution:
    """Functional convenience wrapper around :class:`ADPSolver`.

    .. deprecated::
        Prefer the session API -- ``Session(database).solve(query, k)`` --
        which binds the database once and reuses its caches across solves.
        This wrapper remains as a shim over the implicit default session.

    Example
    -------
    >>> from repro import parse_query, Database, Session
    >>> q = parse_query("Q(A, B) :- R1(A), R2(A, B)")
    >>> d = Database.from_dict(
    ...     {"R1": ["A"], "R2": ["A", "B"]},
    ...     {"R1": [(1,), (2,)], "R2": [(1, 10), (1, 11), (2, 20)]})
    >>> Session(d).solve(q, k=2).size
    1
    """
    warnings.warn(
        "compute_adp(query, database, k) is deprecated; use "
        "Session(database).solve(query, k) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.session import default_session

    return default_session(database).solve(query, k, **config_overrides)
