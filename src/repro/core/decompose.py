"""The Decompose step of ``ComputeADP`` (Section 7.3, Algorithm 5).

When the query is disconnected, the results of its connected subqueries join
by cross product; removing ``k_i`` outputs from subquery ``Q_i`` removes

    ``prod_i m_i  -  prod_i (m_i - k_i)``            (``m_i = |Q_i(D)|``)

outputs overall (Lemma 3 / Equation (2)).  ADP therefore reduces to finding
the cheapest combination ``(k_1, ..., k_s)`` reaching the target, where the
per-subquery costs come from recursive ``ComputeADP`` calls.

Three combination strategies are provided, matching the ablation of
Figure 29:

* ``FULL_ENUMERATION`` -- enumerate every combination ``(k_1, ..., k_s)``
  directly ("decompose into s partitions at once"); exponential in ``s``.
* ``PAIRWISE`` -- fold the subqueries left to right, combining the prefix
  with the next subquery by scanning all ``(k_prefix, k_i)`` pairs for every
  target ``j`` (Algorithm 5 as written, ``O(s * k^3)``).
* ``IMPROVED_DP`` (default) -- same fold, but for a fixed ``j`` and ``k_i``
  the smallest feasible ``k_prefix`` is computed in closed form from the
  cross-product identity, removing the inner loop (``O(s * k^2)``).
"""

from __future__ import annotations

import math
from enum import Enum
from itertools import product as iter_product
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.curves import INFEASIBLE, CostCurve, TableCurve, constant_zero_curve
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery
from repro.query.transforms import connected_components

ChildCurveFn = Callable[[ConjunctiveQuery, Database, int], CostCurve]


class DecomposeStrategy(Enum):
    """How the per-subquery solutions are combined (Figure 29 ablation)."""

    IMPROVED_DP = "improved_dp"
    PAIRWISE = "pairwise"
    FULL_ENUMERATION = "full_enumeration"


def _removed_in_product(prefix_total: int, k1: int, m2: int, k2: int) -> int:
    """Outputs removed from ``prefix x Q_i`` when removing k1 and k2 outputs.

    ``prefix_total`` is the total number of outputs of the prefix product and
    ``m2`` the output count of the new component.
    """
    return prefix_total * m2 - (prefix_total - k1) * (m2 - k2)


def decompose_curve(
    query: ConjunctiveQuery,
    database: Database,
    kmax: int,
    child_curve: ChildCurveFn,
    strategy: DecomposeStrategy = DecomposeStrategy.IMPROVED_DP,
) -> CostCurve:
    """Build the ADP cost curve of a disconnected query.

    ``child_curve`` is the recursive solver callback (``ComputeADP`` passes
    itself); see the module docstring for the strategies.
    """
    components = connected_components(query)
    if len(components) < 2:
        raise ValueError(f"{query.name} is connected; Decompose does not apply")

    sub_databases = [
        database.restricted_to(component.relation_names) for component in components
    ]
    sizes = [
        evaluate(component, sub_database).output_count()
        for component, sub_database in zip(components, sub_databases)
    ]
    total = math.prod(sizes)
    if total == 0:
        return constant_zero_curve()
    limit = min(kmax, total)

    curves: List[CostCurve] = []
    optimal = True
    for component, sub_database, size in zip(components, sub_databases, sizes):
        curve = child_curve(component, sub_database, min(limit, size))
        curves.append(curve)
        optimal = optimal and curve.optimal

    if strategy is DecomposeStrategy.FULL_ENUMERATION:
        costs, builders = _full_enumeration(curves, sizes, limit)
    else:
        improved = strategy is DecomposeStrategy.IMPROVED_DP
        costs, builders = _fold(curves, sizes, limit, improved=improved)

    def build_solution(k: int) -> FrozenSet[TupleRef]:
        return builders(k)

    return TableCurve(costs, build_solution, optimal=optimal)


# --------------------------------------------------------------------------- #
# Strategy: full enumeration over (k_1, ..., k_s)
# --------------------------------------------------------------------------- #
def _full_enumeration(
    curves: Sequence[CostCurve], sizes: Sequence[int], limit: int
) -> Tuple[List[float], Callable[[int], FrozenSet[TupleRef]]]:
    ranges = [range(0, min(limit, curve.max_gain()) + 1) for curve in curves]
    total = math.prod(sizes)

    best_cost = [INFEASIBLE] * (limit + 1)
    best_combo: List[Optional[Tuple[int, ...]]] = [None] * (limit + 1)
    best_cost[0] = 0.0
    best_combo[0] = tuple(0 for _ in curves)

    for combo in iter_product(*ranges):
        cost = 0.0
        feasible = True
        for curve, k_i in zip(curves, combo):
            c = curve.cost(k_i)
            if c == INFEASIBLE:
                feasible = False
                break
            cost += c
        if not feasible:
            continue
        removed = total - math.prod(m - k for m, k in zip(sizes, combo))
        removed = min(removed, limit)
        for j in range(1, removed + 1):
            if cost < best_cost[j]:
                best_cost[j] = cost
                best_combo[j] = combo

    def build(k: int) -> FrozenSet[TupleRef]:
        combo = best_combo[k]
        if combo is None:
            raise ValueError(f"cannot remove {k} outputs")
        refs: set = set()
        for curve, k_i in zip(curves, combo):
            if k_i > 0:
                refs |= curve.solution(k_i)
        return frozenset(refs)

    return best_cost, build


# --------------------------------------------------------------------------- #
# Strategy: left fold (PAIRWISE and IMPROVED_DP)
# --------------------------------------------------------------------------- #
def _fold(
    curves: Sequence[CostCurve],
    sizes: Sequence[int],
    limit: int,
    improved: bool,
) -> Tuple[List[float], Callable[[int], FrozenSet[TupleRef]]]:
    # prefix_costs[j] = best cost to remove >= j outputs from the prefix
    # product; prefix_choice[i][j] = (k_prefix, k_i) decision taken when
    # component i was folded in.
    first = curves[0]
    prefix_costs: List[float] = [INFEASIBLE] * (limit + 1)
    for j in range(0, min(limit, first.max_gain()) + 1):
        prefix_costs[j] = first.cost(j)
    prefix_total = sizes[0]
    choices: List[List[Optional[Tuple[int, int]]]] = []

    for index in range(1, len(curves)):
        curve = curves[index]
        m2 = sizes[index]
        new_costs: List[float] = [INFEASIBLE] * (limit + 1)
        new_choice: List[Optional[Tuple[int, int]]] = [None] * (limit + 1)
        new_costs[0] = 0.0
        new_choice[0] = (0, 0)
        max_k2 = min(limit, curve.max_gain(), m2)
        max_k1 = min(limit, prefix_total)
        for j in range(1, limit + 1):
            best = INFEASIBLE
            best_pair: Optional[Tuple[int, int]] = None
            for k2 in range(0, max_k2 + 1):
                cost2 = curve.cost(k2)
                if cost2 == INFEASIBLE:
                    continue
                if improved:
                    # Smallest k1 with prefix_total*m2 - (prefix_total-k1)*(m2-k2) >= j.
                    if k2 * prefix_total >= j:
                        k1_candidates = [0]
                    elif m2 == k2:
                        continue
                    else:
                        needed = j - k2 * prefix_total
                        k1_min = -(-needed // (m2 - k2))  # ceil division
                        if k1_min > max_k1:
                            continue
                        k1_candidates = [k1_min]
                else:
                    k1_candidates = [
                        k1
                        for k1 in range(0, min(j, max_k1) + 1)
                        if _removed_in_product(prefix_total, k1, m2, k2) >= j
                    ]
                for k1 in k1_candidates:
                    cost1 = prefix_costs[k1] if k1 <= limit else INFEASIBLE
                    if cost1 == INFEASIBLE:
                        continue
                    if _removed_in_product(prefix_total, k1, m2, k2) < j:
                        continue
                    candidate = cost1 + cost2
                    if candidate < best:
                        best = candidate
                        best_pair = (k1, k2)
            new_costs[j] = best
            new_choice[j] = best_pair
        choices.append(new_choice)
        prefix_costs = new_costs
        prefix_total *= m2

    def build(k: int) -> FrozenSet[TupleRef]:
        refs: set = set()
        j = k
        for index in range(len(curves) - 1, 0, -1):
            pair = choices[index - 1][j] if j <= limit else None
            if pair is None:
                raise ValueError(f"cannot remove {k} outputs")
            k1, k2 = pair
            if k2 > 0:
                refs |= curves[index].solution(k2)
            j = k1
        if j > 0:
            refs |= curves[0].solution(j)
        return frozenset(refs)

    return prefix_costs, build
