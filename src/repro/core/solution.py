"""ADP problem instances and solutions.

:class:`ADPInstance` bundles a query, a database and a target ``k``;
:class:`ADPSolution` is what every solver returns: the set of removed input
tuples, how many output tuples that removal deletes, whether the solution is
known to be optimal, and bookkeeping about which algorithm produced it.

Solutions can re-verify themselves against the database
(:meth:`ADPSolution.verify`), which the test-suite uses to check feasibility
of every algorithm on every instance it generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery


@dataclass(frozen=True)
class ADPInstance:
    """One ADP problem instance ``ADP(Q, D, k)``.

    ``k`` must satisfy ``1 <= k <= |Q(D)|`` (the paper's implicit
    constraint); :meth:`validate` checks it against the database.
    """

    query: ConjunctiveQuery
    database: Database
    k: int

    def output_size(self) -> int:
        """``|Q(D)|`` for this instance."""
        return evaluate(self.query, self.database).output_count()

    def validate(self) -> None:
        """Raise ``ValueError`` when ``k`` is out of range."""
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        total = self.output_size()
        if self.k > total:
            raise ValueError(
                f"k={self.k} exceeds the number of output tuples |Q(D)|={total}"
            )


@dataclass(frozen=True)
class ADPSolution:
    """A (candidate) solution to ``ADP(Q, D, k)``.

    Attributes
    ----------
    query, k:
        The instance solved.
    removed:
        Input tuples to delete.
    removed_outputs:
        Number of output tuples whose deletion is achieved (as computed by
        the solver; :meth:`verify` recomputes it from scratch).
    optimal:
        ``True`` when the producing algorithm guarantees optimality for this
        query (exact base cases and dynamic programs on poly-time queries),
        ``False`` for heuristic/approximate solutions.
    method:
        Name of the producing algorithm (``"exact"``, ``"greedy"``,
        ``"drastic"``, ``"bruteforce"``, ...).
    stats:
        Free-form solver statistics (e.g. recursion depth, number of
        sub-problems, greedy iterations) used by the experiment harness.
    """

    query: ConjunctiveQuery
    k: int
    removed: FrozenSet[TupleRef]
    removed_outputs: int
    optimal: bool
    method: str
    stats: Dict[str, object] = field(default_factory=dict)
    #: Objective value.  Normally ``len(removed)``; in counting-only mode the
    #: solver reports the cost here and leaves ``removed`` empty.
    objective: Optional[int] = None

    @property
    def size(self) -> int:
        """The objective value: how many input tuples are removed."""
        if self.objective is not None:
            return self.objective
        return len(self.removed)

    def is_feasible(self) -> bool:
        """Whether the solver-reported deletion count reaches ``k``."""
        return self.removed_outputs >= self.k

    def verify(self, database: Database) -> int:
        """Recompute, from scratch, how many outputs the removal deletes.

        Returns the recomputed count (callers typically assert it is at
        least ``k``).  This evaluates the query twice and is intended for
        tests and examples, not for inner loops.
        """
        before = evaluate(self.query, database).output_count()
        after = evaluate(self.query, database.without(self.removed)).output_count()
        return before - after

    def with_stats(self, **extra: object) -> "ADPSolution":
        """A copy of the solution with additional statistics merged in."""
        stats = dict(self.stats)
        stats.update(extra)
        return ADPSolution(
            query=self.query,
            k=self.k,
            removed=self.removed,
            removed_outputs=self.removed_outputs,
            optimal=self.optimal,
            method=self.method,
            stats=stats,
            objective=self.objective,
        )

    def __str__(self) -> str:
        flag = "optimal" if self.optimal else "heuristic"
        return (
            f"ADPSolution({self.query.name}, k={self.k}, size={self.size}, "
            f"removed_outputs={self.removed_outputs}, {flag}, method={self.method})"
        )


def summarize_removed(removed: Iterable[TupleRef]) -> Dict[str, int]:
    """Per-relation breakdown of a deletion set (handy for reports)."""
    breakdown: Dict[str, int] = {}
    for ref in removed:
        breakdown[ref.relation] = breakdown.get(ref.relation, 0) + 1
    return breakdown
