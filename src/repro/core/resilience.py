"""Resilience as a special case of ADP (Section 3.3).

The *resilience* of a boolean query that is true on ``D`` is the minimum
number of input tuples whose removal makes it false [Freire et al., 2015].
It coincides with ``ADP(Q, D, 1)`` for the boolean version of ``Q`` and with
``ADP(Q, D, |Q(D)|)`` for the original query, and its dichotomy (poly-time
iff triad-free, Theorem 4) is the boolean base case of the ADP dichotomy.

These wrappers expose resilience directly so downstream users (and the
robustness examples) do not have to phrase it through ADP themselves.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adp import ADPSolver, ratio_target
from repro.core.solution import ADPSolution
from repro.core.structures import find_triad_like
from repro.data.database import Database
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery


def is_resilience_poly_time(query: ConjunctiveQuery) -> bool:
    """Whether resilience of (the boolean version of) ``query`` is poly-time.

    Theorem 4 [11]: poly-time iff the boolean query contains no triad.
    """
    return find_triad_like(query.as_boolean()) is None


def resilience(
    query: ConjunctiveQuery,
    database: Database,
    solver: Optional[ADPSolver] = None,
) -> ADPSolution:
    """Compute the resilience of ``query`` on ``database``.

    The query is turned into its boolean version and solved with ``k = 1``.
    If the boolean query is already false on ``database`` the returned
    solution is empty (nothing needs to be removed), with ``k = 0``.
    """
    boolean = query.as_boolean()
    solver = solver or ADPSolver()
    if evaluate(boolean, database).output_count() == 0:
        return ADPSolution(
            query=boolean,
            k=0,
            removed=frozenset(),
            removed_outputs=0,
            optimal=True,
            method="already-false",
            stats={"output_size": 0},
            objective=0,
        )
    return solver.solve_in_context(boolean, database, 1)


def robustness_profile(
    query: ConjunctiveQuery,
    database: Database,
    ratios=(0.1, 0.25, 0.5, 0.75, 1.0),
    solver: Optional[ADPSolver] = None,
):
    """How hard it is to destroy various fractions of the query output.

    For each ratio ρ the profile reports the (possibly heuristic) number of
    input tuples needed to remove at least ρ·|Q(D)| output tuples -- exactly
    the robustness analysis motivating Examples 2 and 3 of the paper.

    Returns a list of ``(ratio, k, solution)`` triples.
    """
    solver = solver or ADPSolver()
    total = evaluate(query, database).output_count()
    profile = []
    for ratio in ratios:
        k = ratio_target(total, ratio)
        solution = solver.solve_in_context(query, database, k)
        profile.append((ratio, solution.k, solution))
    return profile
