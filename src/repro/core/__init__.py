"""The ADP core: dichotomies, hardness mappings and the unified solver.

This subpackage implements the paper's contributions proper:

* :mod:`repro.core.decidability` -- the algorithmic dichotomy ``IsPtime``
  (Section 4);
* :mod:`repro.core.structures` -- the structural dichotomy of Theorem 3
  (triad-like, strand, non-hierarchical head join of non-dominated
  relations) and all supporting notions;
* :mod:`repro.core.mapping` -- the core hard queries and hardness-preserving
  query mappings (Section 4.2);
* :mod:`repro.core.adp` -- ``ComputeADP`` (Algorithm 2) with its base cases
  and simplification steps in sibling modules;
* :mod:`repro.core.approximation` -- the full-CQ approximation algorithms
  (Section 6);
* :mod:`repro.core.resilience` -- resilience as a special case;
* :mod:`repro.core.selection` -- the selection extension (Section 7.5);
* :mod:`repro.core.bruteforce` -- the exact brute-force baseline of the
  experimental section.
"""

from repro.core.adp import ADPSolver, SolverConfig, compute_adp
from repro.core.approximation import (
    approximation_factor_bound,
    full_cq_cover_instance,
    greedy_full_cq,
    primal_dual_full_cq,
)
from repro.core.bruteforce import bruteforce_optimum, bruteforce_solve
from repro.core.exact_search import branch_and_bound_optimum, branch_and_bound_solve
from repro.core.decidability import (
    DecisionTrace,
    decide,
    hard_leaf_subqueries,
    is_np_hard,
    is_poly_time,
)
from repro.core.decompose import DecomposeStrategy, decompose_curve
from repro.core.greedy import drastic_curve, greedy_curve
from repro.core.mapping import (
    CORE_QUERIES,
    QPATH,
    QSEESAW,
    QSWING,
    QueryMapping,
    find_core_mapping,
    find_mapping,
    hardness_certificate,
)
from repro.core.resilience import is_resilience_poly_time, resilience, robustness_profile
from repro.core.selection import (
    Selection,
    is_poly_time_with_selection,
    selected_output_size,
    solve_with_selection,
)
from repro.core.singleton import is_singleton, singleton_curve, singleton_relation
from repro.core.solution import ADPInstance, ADPSolution, summarize_removed
from repro.core.structures import (
    StructuralDiagnosis,
    diagnose,
    dominated_relations,
    endogenous_relations,
    exogenous_relations,
    find_strand,
    find_triad,
    find_triad_like,
    has_triad,
    is_hierarchical,
    is_poly_time_structural,
    non_dominated_relations,
)
from repro.core.universe import UniverseStrategy, universe_curve

__all__ = [
    # solver
    "ADPSolver",
    "SolverConfig",
    "compute_adp",
    "ADPInstance",
    "ADPSolution",
    "summarize_removed",
    # dichotomies
    "decide",
    "DecisionTrace",
    "is_poly_time",
    "is_np_hard",
    "hard_leaf_subqueries",
    "is_poly_time_structural",
    "diagnose",
    "StructuralDiagnosis",
    # structures
    "endogenous_relations",
    "exogenous_relations",
    "dominated_relations",
    "non_dominated_relations",
    "find_triad",
    "find_triad_like",
    "find_strand",
    "has_triad",
    "is_hierarchical",
    # mappings
    "CORE_QUERIES",
    "QPATH",
    "QSWING",
    "QSEESAW",
    "QueryMapping",
    "find_mapping",
    "find_core_mapping",
    "hardness_certificate",
    # algorithms
    "bruteforce_solve",
    "bruteforce_optimum",
    "branch_and_bound_solve",
    "branch_and_bound_optimum",
    "greedy_curve",
    "drastic_curve",
    "singleton_curve",
    "singleton_relation",
    "is_singleton",
    "universe_curve",
    "UniverseStrategy",
    "decompose_curve",
    "DecomposeStrategy",
    # approximation / resilience / selection
    "greedy_full_cq",
    "primal_dual_full_cq",
    "full_cq_cover_instance",
    "approximation_factor_bound",
    "resilience",
    "is_resilience_poly_time",
    "robustness_profile",
    "Selection",
    "solve_with_selection",
    "is_poly_time_with_selection",
    "selected_output_size",
]
