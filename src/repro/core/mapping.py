"""Core hard queries and hardness-preserving query mappings (Section 4.2).

The NP-hardness side of the dichotomy is proved by *mapping* an arbitrary
hard query to one of three core queries whose ADP problem is NP-hard
(Lemma 5, via partial vertex cover / k-minimum-coverage reductions):

.. code-block:: text

    Qpath(A, B)  :- R1(A), R2(A, B), R3(B)        (called Qcover in the paper)
    Qswing(A)    :- R2(A, B), R3(B)
    Qseesaw(A)   :- R1(A), R2(A, B), R3(B)

A *query mapping* (Definition 2) is a function ``f: attr(Q1) -> attr(Q2) ∪
{*}`` such that every relation of ``Q1`` maps onto the attribute set of some
relation of ``Q2`` and every relation of ``Q2`` is hit.  Mappings preserve
NP-hardness (Lemma 6), so exhibiting a mapping from ``Q`` to a core query is
a hardness certificate for ``Q``.

Because queries have constant size, :func:`find_core_mapping` simply
enumerates all assignments of attributes to ``{A, B, *}`` and checks the
mapping conditions -- a robust, directly-testable realisation of the case
analysis of Section 4.2.3.  The same search is exposed for arbitrary target
queries through :func:`find_mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query

#: Marker for attributes mapped to "anything"/ignored (the ``*`` of Def. 2).
STAR = "*"

#: Core query ``Qpath`` (written ``Qcover`` in Section 4.2.1): ADP is NP-hard
#: by reduction from partial vertex cover on bipartite graphs.
QPATH = parse_query("Qpath(A, B) :- R1(A), R2(A, B), R3(B)")

#: Core query ``Qswing``: ADP is NP-hard (and hard to approximate) by
#: reduction from k-minimum-coverage.
QSWING = parse_query("Qswing(A) :- R2(A, B), R3(B)")

#: Core query ``Qseesaw``: ADP is NP-hard by reduction from side-constrained
#: vertex cover in bipartite graphs.
QSEESAW = parse_query("Qseesaw(A) :- R1(A), R2(A, B), R3(B)")

#: The three core queries, in the order the paper introduces them.
CORE_QUERIES: Tuple[ConjunctiveQuery, ...] = (QPATH, QSWING, QSEESAW)


@dataclass(frozen=True)
class QueryMapping:
    """A mapping ``f`` from the attributes of ``source`` to ``target``.

    ``assignment`` maps every attribute of ``source`` either to an attribute
    of ``target`` or to :data:`STAR`.
    """

    source: ConjunctiveQuery
    target: ConjunctiveQuery
    assignment: Dict[str, str]

    def image_of_relation(self, relation_name: str) -> frozenset:
        """``g(Ri)``: the target attributes hit by relation ``relation_name``."""
        atom = self.source.atom(relation_name)
        return frozenset(
            self.assignment[a]
            for a in atom.attribute_set
            if self.assignment[a] != STAR
        )

    def relation_assignment(self) -> Dict[str, Optional[str]]:
        """Which target relation each source relation is mapped to.

        Only meaningful for valid mappings; relations whose image matches no
        target relation map to ``None``.
        """
        target_by_attrs = {
            atom.attribute_set: atom.name for atom in self.target.atoms
        }
        return {
            atom.name: target_by_attrs.get(self.image_of_relation(atom.name))
            for atom in self.source.atoms
        }

    def is_valid(self) -> bool:
        """Check the conditions of Definition 2 plus head compatibility.

        Conditions (i) and (ii) are Definition 2 verbatim.  Conditions (iii)
        and (iv) make explicit the head compatibility that every mapping
        constructed in the paper's case analysis (Section 4.2.3) satisfies
        and that the one-to-one output correspondence in the proof of
        Lemma 6 relies on:

        (iii) output attributes of the source map to output attributes of
              the target or to ``*``;
        (iv)  every output attribute of the target is the image of some
              output attribute of the source.

        Without (iii)/(iv) a poly-time query such as
        ``Q(A, B) :- R1(A), R2(A, B)`` would admit a "mapping" to the hard
        core ``Qswing`` that does not preserve the output correspondence.
        """
        target_attr_sets = {atom.attribute_set for atom in self.target.atoms}
        images = {
            atom.name: self.image_of_relation(atom.name)
            for atom in self.source.atoms
        }
        # (i) every source relation maps onto the attribute set of some
        #     target relation;
        if any(image not in target_attr_sets for image in images.values()):
            return False
        # (ii) every target relation is the image of at least one source
        #      relation.
        covered = set(images.values())
        if not all(atom.attribute_set in covered for atom in self.target.atoms):
            return False
        # (iii) head maps into head ∪ {*}.
        source_head = self.source.head_attributes
        target_head = self.target.head_attributes
        head_image = {
            self.assignment[a] for a in source_head if self.assignment[a] != STAR
        }
        if not head_image <= target_head:
            return False
        # (iv) every target output attribute is hit by a source output
        #      attribute.
        if not target_head <= head_image:
            return False
        # (v) join-structure preservation: for every target attribute Y, the
        #     source relations whose image contains Y must be linked (pairwise
        #     or transitively) by shared source attributes mapping to Y.  This
        #     is what forces every witness of the constructed source instance
        #     to borrow a *consistent* set of target tuples, giving the
        #     one-to-one output correspondence that the hardness transfer of
        #     Lemma 6 relies on; without it, e.g. the poly-time query
        #     Q(D) :- R1(A), R2(B, C, D) would spuriously "map" to Qswing.
        for target_attribute in self.target.attributes:
            carriers = [
                atom.name
                for atom in self.source.atoms
                if target_attribute in self.image_of_relation(atom.name)
            ]
            if len(carriers) <= 1:
                continue
            if not self._agreement_connected(carriers, target_attribute):
                return False
        return True

    def _agreement_connected(self, carriers, target_attribute) -> bool:
        """Whether the carrier relations are linked by attributes mapping to
        ``target_attribute`` (condition (v) of :meth:`is_valid`)."""
        atoms = self.source.atoms_by_name()

        def slot_attributes(name):
            return {
                attribute
                for attribute in atoms[name].attribute_set
                if self.assignment[attribute] == target_attribute
            }

        remaining = set(carriers)
        component = {remaining.pop()}
        changed = True
        while changed and remaining:
            changed = False
            linked_attributes = set().union(*(slot_attributes(name) for name in component))
            for name in list(remaining):
                if slot_attributes(name) & linked_attributes:
                    component.add(name)
                    remaining.remove(name)
                    changed = True
        return not remaining

    def __str__(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in sorted(self.assignment.items()))
        return f"{self.source.name} => {self.target.name} [{pairs}]"


def find_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[QueryMapping]:
    """Search for a valid query mapping from ``source`` to ``target``.

    Enumerates every assignment of source attributes to target attributes or
    ``*`` (there are ``(|attr(Q2)| + 1) ** |attr(Q1)|`` of them -- query
    complexity, hence constant for fixed queries) and returns the first valid
    mapping, or ``None``.
    """
    source_attrs = sorted(source.attributes)
    target_attrs = sorted(target.attributes) + [STAR]
    for choice in product(target_attrs, repeat=len(source_attrs)):
        assignment = dict(zip(source_attrs, choice))
        mapping = QueryMapping(source, target, assignment)
        if mapping.is_valid():
            return mapping
    return None


def find_core_mapping(query: ConjunctiveQuery) -> Optional[QueryMapping]:
    """Find a mapping from ``query`` to one of the three core queries.

    Lemma 4 guarantees that such a mapping exists for every query on which
    ``IsPtime`` lands in the "Others" bucket (connected, non-boolean, no
    universal attribute, no vacuum relation); together with Lemma 6 the
    returned mapping is a certificate of NP-hardness.  Returns ``None`` when
    no core mapping exists (in particular for poly-time queries).
    """
    for core in CORE_QUERIES:
        mapping = find_mapping(query, core)
        if mapping is not None:
            return mapping
    return None


def hardness_certificate(query: ConjunctiveQuery) -> Optional[str]:
    """A human-readable hardness certificate for ``query``, or ``None``.

    The certificate combines the ``IsPtime`` trace with either a triad (for
    boolean hard leaves) or a core-query mapping (for "Others" leaves); it is
    ``None`` exactly when the query is poly-time solvable.
    """
    from repro.core.decidability import decide, hard_leaf_subqueries
    from repro.core.structures import find_triad_like

    trace = decide(query)
    if trace.poly_time:
        return None
    lines: List[str] = [f"{query.name} is NP-hard for ADP:"]
    for leaf in hard_leaf_subqueries(query):
        triad = find_triad_like(leaf)
        if leaf.is_boolean and triad is not None:
            lines.append(f"  subquery {leaf} contains the triad {triad}")
            continue
        mapping = find_core_mapping(leaf)
        if mapping is not None:
            lines.append(
                f"  subquery {leaf} maps to core query {mapping.target.name} "
                f"via {mapping}"
            )
        else:  # pragma: no cover - should not happen if Lemma 4 holds
            lines.append(f"  subquery {leaf} is hard (no explicit witness found)")
    return "\n".join(lines)
