"""The Universe step of ``ComputeADP`` (Section 7.3, Algorithm 4).

When the query has *universal attributes* (output attributes appearing in
every atom), the instance partitions by the value combination over those
attributes: the query result is the disjoint union of the results over the
sub-instances, and deleting a tuple only affects the sub-instance sharing its
universal values.  ADP therefore reduces to choosing, per sub-instance, how
many outputs to remove there -- a knapsack-style dynamic program over the
groups (Lemma 2 / Equation (1)) whose sub-problems are ADP instances of the
residual query ``Q^{-A}``.

Two strategies are provided, matching the ablation of Figure 28:

* ``COMBINED`` (default): all universal attributes are removed *as one
  combined attribute*; there is a single level of grouping.
* ``ONE_BY_ONE``: only the first universal attribute is removed here; the
  residual query still has universal attributes, so the solver recurses into
  another Universe level per attribute.  Correct but slower (Section 7.3's
  "removing them one by one" comparison).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.curves import INFEASIBLE, CostCurve, TableCurve, constant_zero_curve
from repro.data.database import Database
from repro.data.relation import Relation, TupleRef
from repro.query.cq import ConjunctiveQuery
from repro.query.transforms import remove_attributes

#: Signature of the recursive solver callback: (query, database, kmax) -> curve.
ChildCurveFn = Callable[[ConjunctiveQuery, Database, int], CostCurve]


class UniverseStrategy(Enum):
    """How universal attributes are eliminated (Figure 28 ablation)."""

    COMBINED = "combined"
    ONE_BY_ONE = "one_by_one"


class _Group:
    """One sub-instance: a value combination over the universal attributes."""

    def __init__(self, combo: Tuple, database: Database, back_map: Dict[Tuple[str, Tuple], TupleRef]):
        self.combo = combo
        self.database = database
        #: maps (relation, projected row) -> original TupleRef
        self.back_map = back_map
        self.curve: Optional[CostCurve] = None

    def map_back(self, refs: FrozenSet[TupleRef]) -> FrozenSet[TupleRef]:
        """Translate residual-query tuple references to original tuples."""
        return frozenset(self.back_map[(ref.relation, ref.values)] for ref in refs)


def _build_groups(
    query: ConjunctiveQuery,
    database: Database,
    universal: Sequence[str],
) -> List[_Group]:
    """Partition the instance by value combination over ``universal``.

    Only combinations present in *every* relation are kept: a combination
    missing from some relation cannot produce output tuples, so its tuples
    are dangling and never worth removing.
    """
    combos_per_relation: List[set] = []
    for atom in query.atoms:
        relation = database.relation(atom.name)
        positions = [relation.attribute_index(a) for a in universal]
        combos_per_relation.append({tuple(row[i] for i in positions) for row in relation})
    shared = set.intersection(*combos_per_relation) if combos_per_relation else set()

    groups: List[_Group] = []
    for combo in sorted(shared, key=repr):
        relations: List[Relation] = []
        back_map: Dict[Tuple[str, Tuple], TupleRef] = {}
        for atom in query.atoms:
            relation = database.relation(atom.name)
            positions = [relation.attribute_index(a) for a in universal]
            kept_attrs = tuple(a for a in relation.attributes if a not in set(universal))
            kept_positions = [relation.attribute_index(a) for a in kept_attrs]
            rows = []
            for row in relation:
                if tuple(row[i] for i in positions) != combo:
                    continue
                projected = tuple(row[i] for i in kept_positions)
                rows.append(projected)
                back_map[(atom.name, projected)] = TupleRef(atom.name, row)
            relations.append(Relation(atom.name, kept_attrs, rows))
        groups.append(_Group(combo, Database(relations), back_map))
    return groups


def universe_curve(
    query: ConjunctiveQuery,
    database: Database,
    kmax: int,
    child_curve: ChildCurveFn,
    strategy: UniverseStrategy = UniverseStrategy.COMBINED,
) -> CostCurve:
    """Build the ADP cost curve of a query with universal attributes.

    Parameters
    ----------
    query, database:
        The instance; ``query`` must have at least one universal attribute.
    kmax:
        Largest target the curve must support.
    child_curve:
        Recursive solver callback used for the residual query on each
        sub-instance (``ComputeADP`` passes itself).
    strategy:
        ``COMBINED`` removes all universal attributes at once, ``ONE_BY_ONE``
        removes a single attribute per level (Figure 28 ablation).
    """
    universal = sorted(query.universal_attributes())
    if not universal:
        raise ValueError(f"{query.name} has no universal attribute")
    if strategy is UniverseStrategy.ONE_BY_ONE:
        universal = universal[:1]
    residual = remove_attributes(query, universal, suffix="~u")

    groups = _build_groups(query, database, universal)
    if not groups:
        return constant_zero_curve()

    # Child curves and their maximum gains (|Q(D_i)|).
    child_max: List[int] = []
    optimal = True
    for group in groups:
        curve = child_curve(residual, group.database, kmax)
        group.curve = curve
        child_max.append(curve.max_gain())
        optimal = optimal and curve.optimal

    total = sum(child_max)
    limit = min(kmax, total)

    # DP over groups: cost[i][j] = optimal cost using only groups 1..i to
    # remove >= j outputs; choice[i][j] = how many outputs group i removes.
    costs: List[List[float]] = [[INFEASIBLE] * (limit + 1) for _ in range(len(groups) + 1)]
    choice: List[List[int]] = [[0] * (limit + 1) for _ in range(len(groups) + 1)]
    costs[0][0] = 0.0
    reachable = 0
    for i, group in enumerate(groups, start=1):
        curve = group.curve
        assert curve is not None
        reachable = min(limit, reachable + child_max[i - 1])
        for j in range(0, limit + 1):
            best = INFEASIBLE
            best_m = 0
            upper = min(j, child_max[i - 1])
            for m in range(0, upper + 1):
                previous = costs[i - 1][j - m]
                if previous == INFEASIBLE:
                    continue
                here = curve.cost(m)
                if here == INFEASIBLE:
                    continue
                candidate = previous + here
                if candidate < best:
                    best = candidate
                    best_m = m
            costs[i][j] = best
            choice[i][j] = best_m

    def build_solution(k: int) -> FrozenSet[TupleRef]:
        refs: set = set()
        j = k
        for i in range(len(groups), 0, -1):
            m = choice[i][j]
            if m > 0:
                group = groups[i - 1]
                assert group.curve is not None
                refs |= group.map_back(group.curve.solution(m))
            j -= m
        return frozenset(refs)

    return TableCurve(costs[len(groups)], build_solution, optimal=optimal)
