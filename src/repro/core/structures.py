"""Structural analysis of conjunctive queries for the ADP dichotomy.

This module implements every structural notion used by the paper:

* **endogenous / exogenous** relations (Appendix A, originally from the
  resilience paper [11]);
* **dominated** relations, both the full-CQ version (Definition 6) and the
  general version (Definition 7);
* **hierarchical** joins (Definition 5);
* the **head join** restricted to non-dominated relations;
* the three *hard structures* of Theorem 3:

  - **triad** (Definition 3, boolean CQs) / **triad-like** (Definition 4),
  - **non-hierarchical head join of non-dominated relations**,
  - **strand** (Definition 8);

* :func:`diagnose` / :func:`is_poly_time_structural`, the structural side of
  the dichotomy (Theorem 3): ``ADP(Q, D, k)`` is NP-hard iff one of the three
  hard structures is present.

Everything here is query complexity (sizes of a handful of atoms), so the
implementations favour direct transliteration of the definitions over
asymptotic cleverness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.query.cq import ConjunctiveQuery
from repro.query.graph import relations_connected_avoiding
from repro.query.transforms import head_join, restrict_to_relations


# ---------------------------------------------------------------------- #
# Endogenous / exogenous relations
# ---------------------------------------------------------------------- #
def endogenous_relations(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """The endogenous relations of ``query`` (Appendix A).

    ``Rj`` is *exogenous* when some other relation ``Ri`` satisfies
    ``attr(Ri) ⊊ attr(Rj)`` and *endogenous* otherwise.  When several
    relations share exactly the same attribute set, only one of them (the
    first in body order) is considered endogenous, matching the paper's
    tie-breaking convention.
    """
    atoms = list(query.atoms)
    result: List[str] = []
    for index, atom in enumerate(atoms):
        exogenous = False
        for other_index, other in enumerate(atoms):
            if other.name == atom.name:
                continue
            if other.attribute_set < atom.attribute_set:
                exogenous = True
                break
            if other.attribute_set == atom.attribute_set and other_index < index:
                exogenous = True
                break
        if not exogenous:
            result.append(atom.name)
    return tuple(result)


def exogenous_relations(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """The complement of :func:`endogenous_relations` (in body order)."""
    endogenous = set(endogenous_relations(query))
    return tuple(name for name in query.relation_names if name not in endogenous)


# ---------------------------------------------------------------------- #
# Dominated relations (Definitions 6 and 7)
# ---------------------------------------------------------------------- #
def is_dominated_by(
    query: ConjunctiveQuery, dominated: str, dominating: str
) -> bool:
    """Whether relation ``dominated`` is dominated by ``dominating`` (Def. 7).

    For a full CQ the head contains every attribute and the definition
    degenerates to Definition 6.  Relations with *equal* attribute sets are
    handled by the caller's tie-breaking rule, not here: this predicate
    requires a strict containment ``attr(Ri) ⊊ attr(Rj)``.
    """
    if dominated == dominating:
        return False
    atoms = query.atoms_by_name()
    attr_j = atoms[dominated].attribute_set
    attr_i = atoms[dominating].attribute_set
    head = query.head_attributes

    # (1) attr(Ri) ⊆ attr(Rj); equal sets are resolved by the duplicate rule.
    if not attr_i < attr_j:
        return False
    # (3) attr(Ri) ⊆ head(Q) or head(Q) ⊆ attr(Ri).
    if not (attr_i <= head or head <= attr_i):
        return False
    # (2) for any Rk with attr(Ri) - attr(Rk) != ∅:
    #     attr(Rj) ∩ attr(Rk) ⊆ attr(Ri) ∩ head(Q).
    for other_name, other in atoms.items():
        if other_name in (dominated,):
            continue
        if attr_i - other.attribute_set:
            if not (attr_j & other.attribute_set) <= (attr_i & head):
                return False
    return True


def non_dominated_relations(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """The non-dominated relations of ``query`` (Definition 7 + tie-break).

    A relation is *dominated* when it is dominated by some other relation;
    relations with identical attribute sets count one (the first in body
    order) as non-dominated and the rest as dominated.
    """
    atoms = list(query.atoms)
    result: List[str] = []
    for index, atom in enumerate(atoms):
        dominated = False
        for other_index, other in enumerate(atoms):
            if other.name == atom.name:
                continue
            if other.attribute_set == atom.attribute_set and other_index < index:
                dominated = True
                break
            if is_dominated_by(query, atom.name, other.name):
                dominated = True
                break
        if not dominated:
            result.append(atom.name)
    return tuple(result)


def dominated_relations(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """The complement of :func:`non_dominated_relations` (in body order)."""
    non_dominated = set(non_dominated_relations(query))
    return tuple(name for name in query.relation_names if name not in non_dominated)


# ---------------------------------------------------------------------- #
# Hierarchical joins (Definition 5)
# ---------------------------------------------------------------------- #
def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Whether a (full) CQ is hierarchical (Definition 5).

    For every pair of attributes ``A, B``: ``rels(A) ⊆ rels(B)``,
    ``rels(B) ⊆ rels(A)`` or ``rels(A) ∩ rels(B) = ∅``.  The check only looks
    at the body, so it can be applied to any CQ (the paper applies it to head
    joins, which are full by construction).
    """
    attributes = sorted(query.attributes)
    rels: Dict[str, FrozenSet[str]] = {
        attribute: frozenset(a.name for a in query.relations_with(attribute))
        for attribute in attributes
    }
    for left, right in combinations(attributes, 2):
        left_rels, right_rels = rels[left], rels[right]
        if left_rels <= right_rels or right_rels <= left_rels:
            continue
        if not (left_rels & right_rels):
            continue
        return False
    return True


def non_hierarchical_witness(
    query: ConjunctiveQuery,
) -> Optional[Tuple[str, str]]:
    """A pair of attributes violating the hierarchical property, if any."""
    attributes = sorted(query.attributes)
    rels: Dict[str, FrozenSet[str]] = {
        attribute: frozenset(a.name for a in query.relations_with(attribute))
        for attribute in attributes
    }
    for left, right in combinations(attributes, 2):
        left_rels, right_rels = rels[left], rels[right]
        if left_rels <= right_rels or right_rels <= left_rels:
            continue
        if not (left_rels & right_rels):
            continue
        return (left, right)
    return None


# ---------------------------------------------------------------------- #
# Triad and triad-like structures (Definitions 3 and 4)
# ---------------------------------------------------------------------- #
def find_triad_like(query: ConjunctiveQuery) -> Optional[Tuple[str, str, str]]:
    """Find a triad-like structure (Definition 4), or ``None``.

    A triad-like structure is a triple of *endogenous* relations
    ``R1, R2, R3`` such that for each pair, say ``R1, R2``, there is a path
    from ``R1`` to ``R2`` using only attributes in
    ``attr(Q) - (head(Q) ∪ attr(R3))``.

    On a boolean query the head is empty and this is exactly the *triad* of
    Definition 3 (the resilience dichotomy of [11]).
    """
    endogenous = endogenous_relations(query)
    if len(endogenous) < 3:
        return None
    atoms = query.atoms_by_name()
    head = query.head_attributes
    for triple in combinations(endogenous, 3):
        ok = True
        for third_index in range(3):
            third = triple[third_index]
            first, second = (triple[i] for i in range(3) if i != third_index)
            forbidden = head | atoms[third].attribute_set
            if not relations_connected_avoiding(query, first, second, forbidden):
                ok = False
                break
        if ok:
            return triple
    return None


def find_triad(query: ConjunctiveQuery) -> Optional[Tuple[str, str, str]]:
    """Find a triad (Definition 3) in a *boolean* CQ, or ``None``.

    Raises ``ValueError`` when called on a non-boolean query -- the triad
    notion of [11] is only defined for boolean queries; use
    :func:`find_triad_like` for general CQs.
    """
    if not query.is_boolean:
        raise ValueError("find_triad is only defined for boolean queries")
    return find_triad_like(query)


def has_triad(query: ConjunctiveQuery) -> bool:
    """Whether a boolean CQ contains a triad."""
    return find_triad(query) is not None


# ---------------------------------------------------------------------- #
# Strand (Definition 8)
# ---------------------------------------------------------------------- #
def find_strand(query: ConjunctiveQuery) -> Optional[Tuple[str, str]]:
    """Find a strand (Definition 8), or ``None``.

    A strand is a pair of *non-dominated* relations ``Ri, Rj`` such that

    1. ``head(Q) ∩ attr(Ri) != head(Q) ∩ attr(Rj)``, and
    2. ``(attr(Ri) ∩ attr(Rj)) - head(Q) != ∅``.
    """
    atoms = query.atoms_by_name()
    head = query.head_attributes
    candidates = non_dominated_relations(query)
    for left, right in combinations(candidates, 2):
        attr_left = atoms[left].attribute_set
        attr_right = atoms[right].attribute_set
        if (head & attr_left) == (head & attr_right):
            continue
        if (attr_left & attr_right) - head:
            return (left, right)
    return None


# ---------------------------------------------------------------------- #
# Head join of non-dominated relations
# ---------------------------------------------------------------------- #
def head_join_of_non_dominated(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The head join (Section 5.2.2) restricted to non-dominated relations."""
    non_dominated = non_dominated_relations(query)
    restricted = restrict_to_relations(query, non_dominated, name=f"{query.name}_nd")
    return head_join(restricted)


# ---------------------------------------------------------------------- #
# The structural dichotomy (Theorem 3)
# ---------------------------------------------------------------------- #
@dataclass
class StructuralDiagnosis:
    """The outcome of the structural classification of a query.

    ``np_hard`` is ``True`` iff at least one hard structure was found; the
    witnesses (when present) name the relations/attributes realising each
    structure, which makes NP-hardness results explainable to users.
    """

    query: ConjunctiveQuery
    triad_like: Optional[Tuple[str, str, str]] = None
    strand: Optional[Tuple[str, str]] = None
    non_hierarchical_attributes: Optional[Tuple[str, str]] = None
    endogenous: Tuple[str, ...] = field(default_factory=tuple)
    non_dominated: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def np_hard(self) -> bool:
        """Whether any hard structure is present (Theorem 3)."""
        return (
            self.triad_like is not None
            or self.strand is not None
            or self.non_hierarchical_attributes is not None
        )

    @property
    def poly_time(self) -> bool:
        """Whether the query is poly-time solvable according to Theorem 3."""
        return not self.np_hard

    def hard_structures(self) -> List[str]:
        """Human-readable names of the hard structures that were found."""
        found = []
        if self.triad_like is not None:
            found.append(f"triad-like{self.triad_like}")
        if self.strand is not None:
            found.append(f"strand{self.strand}")
        if self.non_hierarchical_attributes is not None:
            found.append(
                "non-hierarchical head join of non-dominated relations "
                f"(witness attributes {self.non_hierarchical_attributes})"
            )
        return found

    def __str__(self) -> str:
        verdict = "NP-hard" if self.np_hard else "poly-time"
        details = "; ".join(self.hard_structures()) or "no hard structure"
        return f"{self.query.name}: {verdict} ({details})"


def diagnose(query: ConjunctiveQuery) -> StructuralDiagnosis:
    """Classify ``query`` according to the structural dichotomy (Theorem 3)."""
    head_join_nd = head_join_of_non_dominated(query)
    return StructuralDiagnosis(
        query=query,
        triad_like=find_triad_like(query),
        strand=find_strand(query),
        non_hierarchical_attributes=non_hierarchical_witness(head_join_nd),
        endogenous=endogenous_relations(query),
        non_dominated=non_dominated_relations(query),
    )


def is_poly_time_structural(query: ConjunctiveQuery) -> bool:
    """The structural dichotomy: poly-time iff no hard structure (Theorem 3)."""
    return diagnose(query).poly_time
