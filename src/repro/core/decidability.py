"""The algorithmic dichotomy: the ``IsPtime`` procedure (Section 4).

``IsPtime(Q)`` decides, in time polynomial in the query size, whether
``ADP(Q, D, k)`` is poly-time solvable in data complexity for *all* instances
``D`` and targets ``k`` (Theorem 2).  The procedure (Algorithm 1 / Figure 3):

1. remove all universal attributes (output attributes present in every atom);
2. if the query became boolean: poly-time iff it has no triad (Theorem 1,
   from the resilience dichotomy of [11]);
3. else if some relation is vacuum: poly-time (Lemma 1);
4. else if the query is disconnected: poly-time iff every connected
   subquery is poly-time (Lemma 3);
5. otherwise ("Others" in Figure 3): NP-hard (Lemma 4).

Besides the boolean answer, :func:`decide` returns a :class:`DecisionTrace`
recording the simplification steps and the base case reached, which the
documentation examples use to explain *why* a query is easy or hard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.structures import find_triad_like
from repro.query.cq import ConjunctiveQuery
from repro.query.transforms import connected_components, remove_attributes


@dataclass
class DecisionTrace:
    """A record of one ``IsPtime`` run.

    Attributes
    ----------
    query:
        The query the trace refers to (possibly an intermediate subquery).
    poly_time:
        The verdict for this query.
    steps:
        Human-readable simplification / base-case steps, in order.
    children:
        Traces of connected subqueries when the decomposition step fired.
    """

    query: ConjunctiveQuery
    poly_time: bool
    steps: List[str] = field(default_factory=list)
    children: List["DecisionTrace"] = field(default_factory=list)

    def explain(self, indent: int = 0) -> str:
        """A multi-line, indented explanation of the decision."""
        pad = "  " * indent
        verdict = "poly-time" if self.poly_time else "NP-hard"
        lines = [f"{pad}{self.query}: {verdict}"]
        for step in self.steps:
            lines.append(f"{pad}  - {step}")
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


def decide(query: ConjunctiveQuery) -> DecisionTrace:
    """Run ``IsPtime`` on ``query`` and return the full decision trace."""
    steps: List[str] = []
    current = query

    universal = sorted(current.universal_attributes())
    if universal:
        steps.append(f"remove universal attributes {universal} (Lemma 2)")
        current = remove_attributes(current, universal, suffix="~u")

    if current.is_boolean:
        triad = find_triad_like(current)
        if triad is None:
            steps.append("boolean query with no triad: poly-time (Theorem 1)")
            return DecisionTrace(query, True, steps)
        steps.append(f"boolean query with triad {triad}: NP-hard (Theorem 4)")
        return DecisionTrace(query, False, steps)

    if current.has_vacuum_relation:
        vacuum = [a.name for a in current.vacuum_atoms]
        steps.append(f"vacuum relation(s) {vacuum}: poly-time (Lemma 1)")
        return DecisionTrace(query, True, steps)

    components = connected_components(current)
    if len(components) > 1:
        steps.append(
            f"disconnected into {len(components)} connected subqueries (Lemma 3)"
        )
        children = [decide(component) for component in components]
        poly = all(child.poly_time for child in children)
        return DecisionTrace(query, poly, steps, children)

    steps.append(
        "connected, non-boolean, no universal attribute, no vacuum relation: "
        "NP-hard (Lemma 4, 'Others')"
    )
    return DecisionTrace(query, False, steps)


def is_poly_time(query: ConjunctiveQuery) -> bool:
    """``IsPtime(Q)``: whether ``ADP(Q, D, k)`` is poly-time solvable.

    Runs in time polynomial in the query size (Theorem 2).
    """
    return decide(query).poly_time


def is_np_hard(query: ConjunctiveQuery) -> bool:
    """Whether ``ADP(Q, D, k)`` is NP-hard (the complement of IsPtime)."""
    return not is_poly_time(query)


def hard_leaf_subqueries(query: ConjunctiveQuery) -> List[ConjunctiveQuery]:
    """The simplified subqueries on which ``IsPtime`` reaches a hard base case.

    The returned queries are the leaves of the ``IsPtime`` recursion that are
    either a boolean query containing a triad or land in the "Others" bucket
    of Figure 3.  Every returned leaf admits a hardness witness: a triad for
    boolean leaves, and a mapping to one of the three core queries for
    "Others" leaves (Lemma 4 / Section 4.2.3) -- see
    :func:`repro.core.mapping.find_core_mapping`.

    An empty list means the query is poly-time solvable.
    """

    def collect(trace: DecisionTrace, acc: List[ConjunctiveQuery]) -> None:
        if trace.poly_time:
            return
        if trace.children:
            for child in trace.children:
                collect(child, acc)
            return
        # Recompute the simplified query at this leaf.
        current = trace.query
        universal = current.universal_attributes()
        if universal:
            current = remove_attributes(current, universal, suffix="~u")
        acc.append(current)

    trace = decide(query)
    leaves: List[ConjunctiveQuery] = []
    collect(trace, leaves)
    return leaves
