"""The Boolean (resilience) base case of ``ComputeADP`` (Section 7.1).

For a boolean query the output is a single tuple (the empty tuple) and ADP
degenerates to the *resilience* problem of Freire et al. [11]: remove the
minimum number of input tuples so that the query becomes false.  For
triad-free boolean queries resilience is poly-time solvable; the paper's
algorithm arranges the relations in a *linear* order (every attribute occurs
in a contiguous run of atoms), builds a layered flow network with one
unit-capacity edge per input tuple of an endogenous relation (and an
infinite-capacity edge per tuple of an exogenous relation, which is never
removed -- Lemma 13), and returns a minimum cut.

Two pieces live here:

* :func:`linear_order` -- find a linear arrangement of the atoms, if one
  exists;
* :func:`min_cut_curve` -- build the flow network over the non-dangling
  tuples and return the resilience as a one-pick
  :class:`~repro.core.curves.PrefixCurve` (boolean queries only ever need
  ``k = 1``).

The full query-rewriting machinery of [11] (which linearises *every*
triad-free query by repeatedly eliminating dominated atoms) is out of scope;
when a triad-free boolean query admits no direct linear arrangement the
solver falls back to the greedy heuristic and marks the result as not
guaranteed optimal.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.core.curves import PrefixCurve, constant_zero_curve
from repro.core.structures import endogenous_relations
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.engine.flow import INFINITY, FlowNetwork
from repro.engine.semijoin import remove_dangling_tuples
from repro.query.cq import ConjunctiveQuery

#: Above this many atoms the exhaustive permutation search is skipped and a
#: greedy ordering heuristic (verified before use) is attempted instead.
_MAX_ATOMS_FOR_EXHAUSTIVE_SEARCH = 8


def _is_linear_arrangement(query: ConjunctiveQuery, order: Sequence[str]) -> bool:
    """Whether ``order`` puts every attribute in a contiguous run of atoms."""
    position = {name: index for index, name in enumerate(order)}
    for attribute in query.attributes:
        positions = sorted(
            position[a.name] for a in query.relations_with(attribute)
        )
        if positions and positions[-1] - positions[0] + 1 != len(positions):
            return False
    return True


def _greedy_order(query: ConjunctiveQuery) -> List[str]:
    """A cheap ordering heuristic: repeatedly append the atom sharing the most
    attributes with the last one appended."""
    remaining = list(query.relation_names)
    atoms = query.atoms_by_name()
    order = [remaining.pop(0)]
    while remaining:
        last = atoms[order[-1]].attribute_set
        best = max(remaining, key=lambda name: len(atoms[name].attribute_set & last))
        remaining.remove(best)
        order.append(best)
    return order


def linear_order(query: ConjunctiveQuery) -> Optional[List[str]]:
    """Find a linear arrangement of the atoms of ``query``, if one exists.

    A query is *linear* when its relations can be ordered so that each
    attribute occurs in a contiguous sequence of atoms.  For small bodies the
    search is exhaustive (queries have constant size); for unusually large
    bodies a greedy ordering is attempted and verified, returning ``None``
    when it fails.
    """
    names = list(query.relation_names)
    if len(names) <= 2:
        return names
    if len(names) > _MAX_ATOMS_FOR_EXHAUSTIVE_SEARCH:
        candidate = _greedy_order(query)
        return candidate if _is_linear_arrangement(query, candidate) else None
    for order in permutations(names):
        if _is_linear_arrangement(query, order):
            return list(order)
    return None


def min_cut_curve(
    query: ConjunctiveQuery,
    database: Database,
    order: Optional[Sequence[str]] = None,
) -> PrefixCurve:
    """The resilience of a linear boolean query as a cost curve.

    Parameters
    ----------
    query:
        A boolean CQ.  The caller is responsible for having checked that the
        query is triad-free (otherwise the min cut is still a feasible
        contingency set, but not necessarily minimum).
    database:
        The instance.
    order:
        A linear arrangement of the atoms; computed via :func:`linear_order`
        when omitted.  ``ValueError`` is raised when no arrangement exists.

    Returns
    -------
    PrefixCurve
        A curve with a single pick ``(cut tuples, 1)``: boolean queries have
        at most one output tuple, so only ``k in {0, 1}`` is meaningful.
    """
    if not query.is_boolean:
        raise ValueError("min_cut_curve only applies to boolean queries")
    if order is None:
        order = linear_order(query)
        if order is None:
            raise ValueError(
                f"query {query.name} admits no linear arrangement; "
                "use the greedy fallback instead"
            )
    elif not _is_linear_arrangement(query, order):
        raise ValueError(f"{list(order)} is not a linear arrangement of {query.name}")

    # Work on the non-dangling part of the instance: dangling tuples are
    # never worth removing and would add spurious paths to the network.
    reduced, _removed = remove_dangling_tuples(query, database)
    if evaluate(query, reduced).output_count() == 0:
        return constant_zero_curve()

    atoms = query.atoms_by_name()
    endogenous = set(endogenous_relations(query))

    # Boundary attribute sets V_i = attr(R_i) ∩ attr(R_{i+1}); V_0 = V_p = ∅.
    boundaries: List[Tuple[str, ...]] = []
    for index in range(len(order) - 1):
        left = atoms[order[index]].attribute_set
        right = atoms[order[index + 1]].attribute_set
        boundaries.append(tuple(sorted(left & right)))

    network = FlowNetwork()
    source = ("boundary", 0, ())
    sink = ("boundary", len(order), ())
    network.add_node(source)
    network.add_node(sink)

    for index, name in enumerate(order):
        relation = reduced.relation(name)
        left_attrs = boundaries[index - 1] if index > 0 else ()
        right_attrs = boundaries[index] if index < len(order) - 1 else ()
        capacity = 1.0 if name in endogenous else INFINITY
        left_positions = [relation.attribute_index(a) for a in left_attrs]
        right_positions = [relation.attribute_index(a) for a in right_attrs]
        network.add_edges(
            (
                ("boundary", index, tuple(row[p] for p in left_positions)),
                ("boundary", index + 1, tuple(row[p] for p in right_positions)),
                capacity,
                TupleRef(name, row),
            )
            for row in relation
        )

    flow = network.max_flow(source, sink)
    cut_refs = tuple(network.min_cut_labels(source))
    if len(cut_refs) != int(flow):  # pragma: no cover - sanity check
        raise RuntimeError(
            f"min cut size {len(cut_refs)} does not match max flow {flow}"
        )
    return PrefixCurve([(cut_refs, 1)], optimal=True)
