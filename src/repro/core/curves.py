"""Cost curves: solutions to ``ADP(Q, D, k)`` for *all* ``k`` at once.

The recursive steps of ``ComputeADP`` (Universe, Algorithm 4, and Decompose,
Algorithm 5) are dynamic programs that query the cost of sub-problems
``ADP(Q', D', m)`` for *many* values of ``m``.  Re-running a solver from
scratch per ``m`` would be wasteful: every base case of the paper naturally
produces the whole cost profile in one pass (a sorted prefix structure for
Singleton, greedy picks for the heuristics, a single cut for Boolean).

A :class:`CostCurve` therefore represents the function

    ``k  ↦  (minimum number of input tuples to delete >= k outputs,
             one deletion set achieving it)``

for ``k`` from 0 up to the number of outputs the curve can remove.  Three
implementations cover every algorithm in the library:

* :class:`PrefixCurve` -- an ordered list of *picks* ``(refs, gain)``; the
  answer for ``k`` is the shortest prefix whose gains sum to at least ``k``.
  Singleton (both cases), the greedy heuristics, per-relation Drastic
  profiles and the Boolean min-cut all fit this shape.
* :class:`MinCurve` -- the pointwise minimum of several curves (used by
  DrasticGreedy, which picks the best endogenous relation per ``k``).
* :class:`TableCurve` -- an explicit cost table plus a solution
  reconstruction callback; produced by the Universe / Decompose dynamic
  programs.

``cost(k)`` returns ``math.inf`` when the curve cannot remove ``k`` outputs
(e.g. ``k`` larger than ``|Q(D)|``).
"""

from __future__ import annotations

import math
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.data.relation import TupleRef

INFEASIBLE = math.inf

#: One unit of work for a :class:`PrefixCurve`: delete ``refs`` and gain
#: ``gain`` removed output tuples.
Pick = Tuple[Tuple[TupleRef, ...], int]


class CostCurve:
    """Abstract interface; see the module docstring."""

    #: Whether cost(k) is the true optimum for every supported ``k``.
    optimal: bool = True

    def max_gain(self) -> int:
        """The largest number of outputs this curve can remove."""
        raise NotImplementedError

    def cost(self, k: int) -> float:
        """Minimum number of deleted input tuples to remove >= ``k`` outputs."""
        raise NotImplementedError

    def solution(self, k: int) -> FrozenSet[TupleRef]:
        """A deletion set achieving :meth:`cost` for ``k``."""
        raise NotImplementedError

    # Convenience -------------------------------------------------------- #
    def feasible(self, k: int) -> bool:
        """Whether the curve can remove at least ``k`` outputs."""
        return k <= self.max_gain()


class PrefixCurve(CostCurve):
    """A curve defined by an ordered sequence of picks.

    Parameters
    ----------
    picks:
        ``(refs, gain)`` pairs, already in the order they should be taken
        (sorted by decreasing gain for Singleton case 1, by increasing cost
        for Singleton case 2, in greedy order for the heuristics, ...).
        Picks with ``gain == 0`` are dropped.
    optimal:
        Whether prefixes of this order are optimal for every ``k``.
    """

    def __init__(self, picks: Sequence[Pick], optimal: bool = True):
        self._picks: List[Pick] = [
            (tuple(refs), int(gain)) for refs, gain in picks if gain > 0
        ]
        self.optimal = optimal
        self._cumulative_gain: List[int] = []
        self._cumulative_cost: List[int] = []
        total_gain = 0
        total_cost = 0
        for refs, gain in self._picks:
            total_gain += gain
            total_cost += len(refs)
            self._cumulative_gain.append(total_gain)
            self._cumulative_cost.append(total_cost)

    def max_gain(self) -> int:
        return self._cumulative_gain[-1] if self._cumulative_gain else 0

    def _prefix_for(self, k: int) -> Optional[int]:
        """The number of picks needed to reach gain ``k`` (None if infeasible)."""
        if k <= 0:
            return 0
        # Binary search over the cumulative gains.
        lo, hi = 0, len(self._cumulative_gain) - 1
        if not self._cumulative_gain or self._cumulative_gain[-1] < k:
            return None
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative_gain[mid] >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo + 1

    def cost(self, k: int) -> float:
        prefix = self._prefix_for(k)
        if prefix is None:
            return INFEASIBLE
        if prefix == 0:
            return 0
        return self._cumulative_cost[prefix - 1]

    def solution(self, k: int) -> FrozenSet[TupleRef]:
        prefix = self._prefix_for(k)
        if prefix is None:
            raise ValueError(f"cannot remove {k} outputs (max {self.max_gain()})")
        refs: List[TupleRef] = []
        for picked_refs, _gain in self._picks[:prefix]:
            refs.extend(picked_refs)
        return frozenset(refs)

    def picks(self) -> List[Pick]:
        """The (filtered) pick sequence, for introspection and tests."""
        return list(self._picks)


class MinCurve(CostCurve):
    """Pointwise minimum of several curves.

    ``cost(k)`` is the smallest cost among the member curves that can remove
    ``k`` outputs; ``solution(k)`` comes from the curve achieving it.  The
    result is optimal only if every member curve is optimal *and* members
    jointly dominate every alternative -- callers set ``optimal``
    explicitly (DrasticGreedy sets it to ``False``).
    """

    def __init__(self, curves: Sequence[CostCurve], optimal: bool = False):
        if not curves:
            raise ValueError("MinCurve needs at least one member curve")
        self._curves = list(curves)
        self.optimal = optimal

    def max_gain(self) -> int:
        return max(curve.max_gain() for curve in self._curves)

    def cost(self, k: int) -> float:
        return min(curve.cost(k) for curve in self._curves)

    def solution(self, k: int) -> FrozenSet[TupleRef]:
        best_curve = None
        best_cost = INFEASIBLE
        for curve in self._curves:
            candidate = curve.cost(k)
            if candidate < best_cost:
                best_cost = candidate
                best_curve = curve
        if best_curve is None:
            raise ValueError(f"cannot remove {k} outputs (max {self.max_gain()})")
        return best_curve.solution(k)


class TableCurve(CostCurve):
    """A curve backed by an explicit cost table and a reconstruction callback.

    Parameters
    ----------
    costs:
        ``costs[k]`` is the optimal cost for target ``k`` (``math.inf`` when
        infeasible); ``costs[0]`` must be 0.
    solution_builder:
        Callable mapping ``k`` to a deletion set achieving ``costs[k]``
        (called lazily, only when a solution is actually requested).
    optimal:
        Whether the table holds true optima.
    """

    def __init__(
        self,
        costs: Sequence[float],
        solution_builder: Callable[[int], FrozenSet[TupleRef]],
        optimal: bool = True,
    ):
        if not costs or costs[0] != 0:
            raise ValueError("costs[0] must exist and be 0")
        self._costs = list(costs)
        self._solution_builder = solution_builder
        self.optimal = optimal

    def max_gain(self) -> int:
        feasible = [k for k, cost in enumerate(self._costs) if cost != INFEASIBLE]
        return max(feasible) if feasible else 0

    def cost(self, k: int) -> float:
        if k <= 0:
            return 0
        if k >= len(self._costs):
            return INFEASIBLE
        return self._costs[k]

    def solution(self, k: int) -> FrozenSet[TupleRef]:
        if k <= 0:
            return frozenset()
        if self.cost(k) == INFEASIBLE:
            raise ValueError(f"cannot remove {k} outputs (max {self.max_gain()})")
        return self._solution_builder(k)


def constant_zero_curve() -> PrefixCurve:
    """A curve that can only handle ``k = 0`` (empty query result)."""
    return PrefixCurve([], optimal=True)
