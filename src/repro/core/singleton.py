"""The Singleton base case of ``ComputeADP`` (Section 7.2, Algorithm 3).

A CQ is a *singleton* (Definition 10) when some relation ``Ri`` satisfies

1. ``attr(Ri) ⊆ attr(Rj)`` for every other relation ``Rj``, and
2. ``attr(Ri) ⊆ head(Q)`` or ``head(Q) ⊆ attr(Ri)``.

Singleton queries are always poly-time solvable (all attributes of ``Ri`` --
respectively all head attributes -- are universal, and removing them leaves a
vacuum relation or a triad-free boolean query), and they can be solved by a
single sort instead of the Universe/Decompose dynamic programs, which is the
optimisation evaluated in Figure 28 of the paper.

* **Case 1** (``attr(Ri) ⊆ head(Q)``): every output tuple "inherits" the
  values of exactly one tuple of ``Ri``; removing that tuple removes the
  whole group.  Sorting groups by decreasing size (*profit*) and taking the
  shortest prefix reaching ``k`` is optimal, because every input tuple of the
  query belongs to exactly one group and can never remove outputs outside it.
* **Case 2** (``head(Q) ⊆ attr(Ri)``): killing an output tuple ``t`` requires
  removing at least the ``c_t`` non-dangling tuples of ``Ri`` that project
  onto ``t`` (each witness of ``t`` contains a distinct such tuple, and every
  other relation's tuples are confined to a single output as well).  Sorting
  outputs by increasing *cost* ``c_t`` and removing the groups of the ``k``
  cheapest outputs is optimal.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from repro.core.curves import PrefixCurve
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.columnar import distinct_ids
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery


def singleton_relation(query: ConjunctiveQuery) -> Optional[str]:
    """The relation witnessing that ``query`` is a singleton, or ``None``.

    Follows Algorithm 3 in picking a relation with the minimum number of
    attributes among the candidates satisfying Definition 10.
    """
    head = query.head_attributes
    candidates: List[str] = []
    for atom in query.atoms:
        others = [a for a in query.atoms if a.name != atom.name]
        if any(not (atom.attribute_set <= other.attribute_set) for other in others):
            continue
        if atom.attribute_set <= head or head <= atom.attribute_set:
            candidates.append(atom.name)
    if not candidates:
        return None
    atoms = query.atoms_by_name()
    return min(candidates, key=lambda name: (atoms[name].arity, name))


def is_singleton(query: ConjunctiveQuery) -> bool:
    """Whether ``query`` is a singleton CQ (Definition 10)."""
    return singleton_relation(query) is not None


def singleton_curve(query: ConjunctiveQuery, database: Database) -> PrefixCurve:
    """Solve a singleton query for every ``k`` at once (Algorithm 3).

    Returns an optimal :class:`~repro.core.curves.PrefixCurve`.  Raises
    ``ValueError`` when the query is not a singleton.
    """
    relation_name = singleton_relation(query)
    if relation_name is None:
        raise ValueError(f"{query.name} is not a singleton query")
    atom = query.atom(relation_name)
    head = query.head_attributes
    result = evaluate(query, database)
    if result.output_count() == 0:
        return PrefixCurve([], optimal=True)

    relation = database.relation(relation_name)

    if atom.attribute_set <= head:
        # Case 1: profit of a tuple t in Ri = number of output tuples whose
        # projection onto attr(Ri) equals t.  The projection/count runs at
        # C speed (itemgetter + Counter): this curve is rebuilt on every
        # solve, so on large outputs it dominates warm-solve latency.
        head_positions = {a: i for i, a in enumerate(query.head)}
        projection_positions = [head_positions[a] for a in relation.attributes]
        keyed: List[Tuple[Tuple, int]]
        if not projection_positions:
            # Vacuum singleton: its only tuple owns every output.
            keyed = [((), len(result.output_rows))]
        elif len(projection_positions) == 1:
            column = itemgetter(projection_positions[0])
            singles = sorted(
                Counter(map(column, result.output_rows)).items(),
                key=lambda item: (-item[1], repr(item[0])),
            )
            keyed = [((value,), profit) for value, profit in singles]
        else:
            project = itemgetter(*projection_positions)
            keyed = sorted(
                Counter(map(project, result.output_rows)).items(),
                key=lambda item: (-item[1], repr(item[0])),
            )
        picks = [((TupleRef(relation_name, key),), profit) for key, profit in keyed]
        return PrefixCurve(picks, optimal=True)

    # Case 2: head(Q) ⊆ attr(Ri).  Cost of an output tuple t = number of
    # non-dangling Ri tuples projecting onto t; remove the cheapest outputs.
    positions = [relation.attribute_index(a) for a in query.head]
    groups: Dict[Tuple, List[TupleRef]] = {}
    prov = result.provenance
    if prov is not None:
        # Packed path: the distinct participating tuple IDs of Ri's column,
        # grouped by their head projection -- no Witness materialization.
        atom_position = prov.atom_position(relation_name)
        assert atom_position is not None  # singleton relations are non-vacuum
        view = prov.refs_for_atom(atom_position)
        for tid in distinct_ids(prov.ref_columns[atom_position]):
            ref = view[tid]
            key = tuple(ref.values[i] for i in positions)
            groups.setdefault(key, []).append(ref)
    else:
        seen: set = set()
        for witness in result.witnesses:
            ref = witness.as_dict()[relation_name]
            if ref in seen:
                continue
            seen.add(ref)
            key = tuple(ref.values[i] for i in positions)
            groups.setdefault(key, []).append(ref)
    picks = [
        (tuple(sorted(refs, key=repr)), 1) for _key, refs in sorted(
            groups.items(), key=lambda item: (len(item[1]), repr(item[0]))
        )
    ]
    return PrefixCurve(picks, optimal=True)
