"""Branch-and-bound exact search for NP-hard instances.

The paper's exact baseline ("BruteForce", Section 8.2) enumerates subsets of
input tuples in increasing size.  That is fine for calibrating heuristics on
tiny inputs but wasteful: it re-examines the same hopeless branches over and
over.  This module adds a considerably stronger exact solver that is still
guaranteed optimal on *every* self-join-free CQ (easy or hard):

* the instance is reduced to a **partial hitting-set** problem over the
  witness sets of the still-alive output tuples (delete at least one tuple of
  every witness of an output to kill it; kill at least ``k`` outputs);
* a depth-first branch-and-bound explores candidate deletions in decreasing
  profit order, pruning with two admissible lower bounds:

  1. if even deleting the ``r`` highest-profit remaining candidates cannot
     reach the residual target, the branch dies (profit bound);
  2. the running best solution size bounds the depth (cost bound).

It remains exponential in the worst case (the problem is NP-hard), but it
solves instances that are far out of reach of plain subset enumeration and is
used by the test-suite as an independent optimum oracle on medium-sized
hard instances.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.core.solution import ADPSolution
from repro.core.structures import endogenous_relations
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.engine.provenance import ProvenanceIndex
from repro.query.cq import ConjunctiveQuery


class _SearchState:
    """Mutable search state shared across the branch-and-bound recursion."""

    def __init__(self, index: ProvenanceIndex, target: int, node_limit: int):
        self.index = index
        self.target = target
        self.node_limit = node_limit
        self.nodes = 0
        self.best_size: Optional[int] = None
        self.best_removed: FrozenSet[TupleRef] = frozenset()


def _upper_profit_bound(index: ProvenanceIndex, candidates: Sequence[TupleRef], budget: int) -> int:
    """Optimistic gain of deleting the ``budget`` best remaining candidates.

    The bound uses :meth:`ProvenanceIndex.touched_outputs`, not
    :meth:`ProvenanceIndex.profit`: an output can only die if at least one
    deleted tuple touches it, so the number of outputs killed by any set
    ``S`` is at most ``sum(touched_outputs(t) for t in S)`` (a union bound).
    Per-tuple *profits* would not be admissible here -- on queries with
    projections they are super-additive (two deletions can jointly kill an
    output that neither kills alone).
    """
    touches = sorted((index.touched_outputs(ref) for ref in candidates), reverse=True)
    return sum(touches[:budget])


def branch_and_bound_solve(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    endogenous_only: bool = True,
    node_limit: int = 200_000,
) -> ADPSolution:
    """Solve ``ADP(Q, D, k)`` exactly by branch and bound.

    Parameters
    ----------
    query, database, k:
        The instance (``1 <= k <= |Q(D)|``).
    endogenous_only:
        Restrict candidate deletions to endogenous relations (safe by the
        exchange argument of Lemma 13).
    node_limit:
        Abort with ``RuntimeError`` after exploring this many search nodes
        (protection against accidentally huge instances).

    Returns
    -------
    ADPSolution
        An optimal solution (``optimal=True``, ``method="branch-and-bound"``).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    result = evaluate(query, database)
    total = result.output_count()
    if k > total:
        raise ValueError(f"k={k} exceeds |Q(D)|={total}")

    index = ProvenanceIndex(result)
    candidates = list(result.participating_refs())
    if endogenous_only:
        allowed = set(endogenous_relations(query))
        candidates = [ref for ref in candidates if ref.relation in allowed]
    # Stable, profit-descending order gives the search good first solutions.
    candidates.sort(key=lambda ref: (-index.profit(ref), repr(ref)))

    state = _SearchState(index, k, node_limit)

    # A greedy solution seeds the incumbent so pruning bites immediately.
    greedy_removed: List[TupleRef] = []
    while index.removed_output_count() < k:
        best = max(
            (ref for ref in candidates if not index.is_removed(ref)),
            key=lambda ref: (index.profit(ref), index.witness_gain(ref), repr(ref)),
            default=None,
        )
        if best is None:
            break
        index.remove(best)
        greedy_removed.append(best)
    if index.removed_output_count() >= k:
        state.best_size = len(greedy_removed)
        state.best_removed = frozenset(greedy_removed)
    for ref in greedy_removed:
        index.restore(ref)

    chosen: List[TupleRef] = []

    def recurse(position: int) -> None:
        state.nodes += 1
        if state.nodes > state.node_limit:
            raise RuntimeError(
                f"branch-and-bound exceeded node_limit={state.node_limit}"
            )
        removed_outputs = index.removed_output_count()
        if removed_outputs >= k:
            if state.best_size is None or len(chosen) < state.best_size:
                state.best_size = len(chosen)
                state.best_removed = frozenset(chosen)
            return
        if state.best_size is not None and len(chosen) + 1 > state.best_size:
            return
        remaining = candidates[position:]
        if not remaining:
            return
        budget = (state.best_size - len(chosen)) if state.best_size is not None else len(remaining)
        budget = min(budget, len(remaining))
        if budget <= 0:
            return
        if removed_outputs + _upper_profit_bound(index, remaining, budget) < k:
            return
        for offset, ref in enumerate(remaining):
            if index.is_removed(ref):
                continue
            if state.best_size is not None and len(chosen) + 1 >= state.best_size:
                # Any completion through this branch has size >= the incumbent.
                break
            # Branch: take ref; the "skip ref" branch is the next iteration.
            index.remove(ref)
            chosen.append(ref)
            recurse(position + offset + 1)
            chosen.pop()
            index.restore(ref)

    recurse(0)

    if state.best_size is None:
        raise RuntimeError("branch-and-bound failed to find a feasible solution")
    removed_outputs = result.outputs_removed_by(state.best_removed)
    return ADPSolution(
        query=query,
        k=k,
        removed=state.best_removed,
        removed_outputs=removed_outputs,
        optimal=True,
        method="branch-and-bound",
        stats={"nodes": state.nodes, "candidates": len(candidates)},
    )


def branch_and_bound_optimum(
    query: ConjunctiveQuery, database: Database, k: int, **kwargs
) -> int:
    """The optimal objective value only (convenience wrapper)."""
    return branch_and_bound_solve(query, database, k, **kwargs).size
