"""Approximation algorithms for ADP on full CQs (Section 6 / Theorem 5).

For a *full* CQ every output tuple has exactly one witness, so ADP is an
instance of Partial Set Cover: sets correspond to input tuples, elements to
output tuples, and the set of an input tuple contains the outputs whose
witness uses it.  Every element belongs to exactly ``p`` sets (one tuple per
relation participates in its witness), so PSC's greedy ``O(log k)`` and
primal-dual ``f``-approximations yield ``O(log k)`` and ``p``-approximations
for ADP (Theorem 5).

For general CQs (with projections) no such guarantee is possible: already
``Qswing`` is hard to approximate within ``Ω(n^ε)`` under standard
assumptions (Lemma 10), which is why the library only exposes these
approximations for full CQs and raises otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.solution import ADPSolution
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.engine.setcover import (
    PartialSetCoverInstance,
    greedy_partial_cover,
    primal_dual_partial_cover,
    sets_from_packed_provenance,
)
from repro.query.cq import ConjunctiveQuery


def full_cq_cover_instance(
    query: ConjunctiveQuery, database: Database, k: int
) -> PartialSetCoverInstance:
    """The Partial Set Cover instance of Theorem 5 for a full CQ.

    Sets are keyed by :class:`~repro.data.relation.TupleRef`; elements are
    the indices of the output tuples (= witnesses, since the query is full).
    Raises ``ValueError`` when the query has existential attributes.
    """
    if not query.is_full:
        raise ValueError(
            "the set-cover reduction of Theorem 5 requires a full CQ; "
            f"{query.name} projects out {sorted(query.existential_attributes)}"
        )
    result = evaluate(query, database)
    if result.provenance is not None:
        return PartialSetCoverInstance(
            sets_from_packed_provenance(result.provenance), target=k
        )
    sets: Dict[TupleRef, set] = {}
    for index, witness in enumerate(result.witnesses):
        for ref in witness.refs:
            sets.setdefault(ref, set()).add(index)
    return PartialSetCoverInstance(
        {ref: frozenset(elements) for ref, elements in sets.items()}, target=k
    )


def _to_solution(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    chosen: List[TupleRef],
    method: str,
) -> ADPSolution:
    removed = frozenset(chosen)
    removed_outputs = evaluate(query, database).outputs_removed_by(removed)
    return ADPSolution(
        query=query,
        k=k,
        removed=removed,
        removed_outputs=removed_outputs,
        optimal=False,
        method=method,
        stats={"approximation": True},
    )


def greedy_full_cq(
    query: ConjunctiveQuery, database: Database, k: int
) -> ADPSolution:
    """The ``O(log k)``-approximation for full CQs (greedy partial set cover)."""
    instance = full_cq_cover_instance(query, database, k)
    chosen = greedy_partial_cover(instance)
    return _to_solution(query, database, k, chosen, method="psc-greedy")


def primal_dual_full_cq(
    query: ConjunctiveQuery, database: Database, k: int
) -> ADPSolution:
    """The ``p``-approximation for full CQs (primal-dual partial set cover).

    ``p`` is the number of relations of the query (every output tuple's
    witness uses exactly one tuple per relation, so the element frequency of
    the PSC instance is ``p``).
    """
    instance = full_cq_cover_instance(query, database, k)
    chosen = primal_dual_partial_cover(instance)
    return _to_solution(query, database, k, chosen, method="psc-primal-dual")


def approximation_factor_bound(query: ConjunctiveQuery, k: int) -> Tuple[float, int]:
    """The two guarantees of Theorem 5 for a full CQ: ``(H_k, p)``.

    ``H_k`` is the ``k``-th harmonic number (the greedy bound) and ``p`` the
    number of relations (the primal-dual bound).
    """
    if not query.is_full:
        raise ValueError("approximation guarantees only hold for full CQs")
    harmonic = sum(1.0 / i for i in range(1, max(k, 1) + 1))
    return harmonic, len(query.atoms)
