"""Selection support for ADP (Section 7.5).

The paper extends ADP to conjunctive queries with equality selections
``σ_{A = a}``.  Lemma 12 shows that the complexity (and the algorithm) only
depends on the *residual* query obtained by removing the selected attributes:

1. apply the predicates, discarding tuples that violate them (they never need
   to be removed -- they cannot contribute to the output);
2. drop the selected attributes from the query and from the surviving tuples
   (all survivors agree on them, so the projection is one-to-one);
3. solve ADP on the residual instance and translate the deletion set back to
   original tuples.

:class:`Selection` represents a conjunction of equality predicates at the
query level: a predicate on attribute ``A`` is applied to *every* relation
containing ``A`` (this is what makes step 2 one-to-one; a per-relation
predicate on a shared attribute is equivalent after the join anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.adp import ADPSolver
from repro.core.decidability import is_poly_time
from repro.core.solution import ADPSolution
from repro.data.database import Database
from repro.data.relation import Relation, TupleRef
from repro.query.cq import ConjunctiveQuery
from repro.query.transforms import remove_attributes


@dataclass(frozen=True)
class Selection:
    """A conjunction of equality predicates ``attribute = value``."""

    predicates: Tuple[Tuple[str, object], ...]

    @classmethod
    def equals(cls, assignments: Mapping[str, object]) -> "Selection":
        """Build a selection from ``{attribute: value}``."""
        return cls(tuple(sorted(assignments.items(), key=lambda item: item[0])))

    @property
    def selected_attributes(self) -> FrozenSet[str]:
        """``A_θ``: the attributes constrained by the selection."""
        return frozenset(attribute for attribute, _value in self.predicates)

    def as_dict(self) -> Dict[str, object]:
        """The predicates as a plain dictionary."""
        return dict(self.predicates)

    def residual_query(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """``Q^{-A_θ}``: the query with the selected attributes removed."""
        relevant = self.selected_attributes & query.attributes
        return remove_attributes(query, relevant, suffix="~sel")

    def apply(self, query: ConjunctiveQuery, database: Database) -> Database:
        """Filter every relation of ``query`` by the applicable predicates.

        Relations not mentioned by the query are copied unchanged.
        """
        assignments = self.as_dict()
        used = query.atoms_by_name()
        relations = []
        for relation in database:
            atom = used.get(relation.name)
            if atom is None:
                relations.append(relation.copy())
                continue
            applicable = {
                attribute: value
                for attribute, value in assignments.items()
                if attribute in atom.attribute_set
            }
            if applicable:
                relations.append(relation.select_equals(applicable))
            else:
                relations.append(relation.copy())
        return Database(relations)

    def __str__(self) -> str:
        rendered = ", ".join(f"{a}={v!r}" for a, v in self.predicates)
        return f"σ[{rendered}]"


def is_poly_time_with_selection(query: ConjunctiveQuery, selection: Selection) -> bool:
    """Lemma 12: ADP with selections is poly-time iff the residual query is."""
    return is_poly_time(selection.residual_query(query))


def solve_with_selection(
    query: ConjunctiveQuery,
    selection: Selection,
    database: Database,
    k: int,
    solver: Optional[ADPSolver] = None,
) -> ADPSolution:
    """Solve ``ADP(σ_θ Q, D, k)`` via the residual-query reduction (Lemma 12).

    The returned solution refers to *original* input tuples of ``database``
    (with the selected attributes still present).
    """
    solver = solver or ADPSolver()
    selected = selection.selected_attributes & query.attributes

    filtered = selection.apply(query, database)
    residual_query = selection.residual_query(query)

    # Project the selected attributes out of the filtered relations, keeping
    # a map back to the original rows (one-to-one because all surviving rows
    # agree on the selected attributes).
    back_map: Dict[Tuple[str, Tuple], TupleRef] = {}
    relations = []
    for atom in query.atoms:
        relation = filtered.relation(atom.name)
        kept_attrs = tuple(a for a in relation.attributes if a not in selected)
        kept_positions = [relation.attribute_index(a) for a in kept_attrs]
        rows = []
        for row in relation:
            projected = tuple(row[i] for i in kept_positions)
            rows.append(projected)
            back_map[(atom.name, projected)] = TupleRef(atom.name, row)
        relations.append(Relation(atom.name, kept_attrs, rows))
    residual_database = Database(relations)

    residual_solution = solver.solve_in_context(residual_query, residual_database, k)
    removed = frozenset(
        back_map[(ref.relation, ref.values)] for ref in residual_solution.removed
    )
    return ADPSolution(
        query=query,
        k=k,
        removed=removed,
        removed_outputs=residual_solution.removed_outputs,
        optimal=residual_solution.optimal,
        method=residual_solution.method,
        stats={**residual_solution.stats, "selection": str(selection)},
        objective=residual_solution.objective,
    )


def selected_output_size(
    query: ConjunctiveQuery, selection: Selection, database: Database
) -> int:
    """``|σ_θ Q(D)|``: output size after applying the selection."""
    from repro.engine.evaluate import evaluate_in_context

    filtered = selection.apply(query, database)
    return evaluate_in_context(query, filtered).output_count()
