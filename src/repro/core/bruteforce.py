"""Brute-force baseline (Section 8, "BruteForce").

The paper's baseline enumerates subsets of input tuples in increasing size
and stops at the first subset whose removal deletes at least ``k`` output
tuples; it is the ground truth the heuristics are compared against in
Figures 12 and 13 and the reference the test-suite uses on tiny instances.

Two safe prunings are applied (both preserve optimality):

* only tuples that participate in at least one witness are candidates
  (deleting a dangling tuple never changes the output);
* by default only tuples of *endogenous* relations are candidates: the
  exchange argument of Lemma 13 shows that any solution using a tuple of an
  exogenous relation can be replaced, at no extra cost, by one using the
  corresponding tuple of a dominating endogenous relation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Tuple

from repro.core.solution import ADPSolution
from repro.core.structures import endogenous_relations
from repro.data.database import Database
from repro.data.relation import TupleRef
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.query.cq import ConjunctiveQuery


def bruteforce_solve(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    endogenous_only: bool = True,
    candidates: Optional[Iterable[TupleRef]] = None,
    max_candidates: int = 30,
) -> ADPSolution:
    """Solve ``ADP(Q, D, k)`` exactly by subset enumeration.

    Parameters
    ----------
    query, database, k:
        The instance; ``1 <= k <= |Q(D)|`` is required.
    endogenous_only:
        Restrict candidates to endogenous relations (optimality preserved by
        Lemma 13).
    candidates:
        Optional explicit candidate pool, overriding the default.
    max_candidates:
        Guard rail: enumeration is exponential, so instances with more than
        this many candidate tuples are rejected with ``ValueError`` rather
        than silently running forever.  Benchmarks that need larger pools
        (Figure 12 uses a few hundred tuples but tiny ``k``) can raise it.

    Returns
    -------
    ADPSolution
        An optimal solution (``optimal=True``, ``method="bruteforce"``).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    result = evaluate(query, database)
    total = result.output_count()
    if k > total:
        raise ValueError(f"k={k} exceeds |Q(D)|={total}")

    if candidates is None:
        pool = list(result.participating_refs())
        if endogenous_only:
            allowed = set(endogenous_relations(query))
            pool = [ref for ref in pool if ref.relation in allowed]
    else:
        pool = list(candidates)
    pool.sort(key=repr)
    if len(pool) > max_candidates:
        raise ValueError(
            f"{len(pool)} candidate tuples exceed max_candidates={max_candidates}; "
            "brute force would enumerate too many subsets"
        )

    # Subset evaluation oracle.  With the columnar engine each candidate
    # becomes one arbitrary-precision bitmask over the witnesses; the outputs
    # killed by a subset are counted with word-level AND/OR instead of
    # per-witness set intersections, which is what makes the enumeration
    # tolerable at benchmark sizes.
    prov = result.provenance
    if prov is not None:
        candidate_masks = prov.witness_masks_for(pool)
        output_masks = prov.output_masks()

        def outputs_removed(subset: Tuple[int, ...]) -> int:
            killed = 0
            for i in subset:
                killed |= candidate_masks[i]
            return sum(1 for mask in output_masks if mask & killed == mask)

    else:

        def outputs_removed(subset: Tuple[int, ...]) -> int:
            return result.outputs_removed_by([pool[i] for i in subset])

    checked = 0
    indices = range(len(pool))
    for size in range(0, len(pool) + 1):
        for subset in combinations(indices, size):
            checked += 1
            removed_outputs = outputs_removed(subset)
            if removed_outputs >= k:
                return ADPSolution(
                    query=query,
                    k=k,
                    removed=frozenset(pool[i] for i in subset),
                    removed_outputs=removed_outputs,
                    optimal=True,
                    method="bruteforce",
                    stats={"subsets_checked": checked, "candidates": len(pool)},
                )
    # Removing every candidate removes every output, so this is unreachable
    # for valid k; kept for defensive completeness.
    raise RuntimeError("brute force failed to find a feasible subset")


def bruteforce_optimum(
    query: ConjunctiveQuery, database: Database, k: int, **kwargs
) -> int:
    """The optimal objective value only (convenience for tests)."""
    return bruteforce_solve(query, database, k, **kwargs).size
