"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on toolchains without the ``wheel``
package (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
