#!/usr/bin/env python3
"""Regenerate the paper's evaluation (Figures 7--29) at laptop scale.

Runs every experiment of Section 8 through the harness in
``repro.experiments.figures`` and prints one tidy table per figure.  The
sizes default to the "quick" grid (a few minutes of pure Python); pass
``--full`` for the functions' larger default grids.

The point of the reproduction is the *shape* of each figure (who wins, how
time and quality scale with N, rho, alpha), not the absolute Java+PostgreSQL
milliseconds of the paper; see EXPERIMENTS.md for the side-by-side reading.

Run with:  python examples/reproduce_figures.py [--full]
"""

import argparse
import sys
import time

from repro.experiments import figures, render_results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the figure functions' larger default grids (slower)",
    )
    parser.add_argument(
        "--only",
        metavar="FIGURE",
        help="run a single figure id (e.g. fig07, fig14_15, fig28)",
    )
    args = parser.parse_args(argv)

    start = time.time()
    if args.only:
        if args.only not in figures.FIGURE_FUNCTIONS:
            parser.error(
                f"unknown figure {args.only!r}; choose from "
                f"{', '.join(figures.FIGURE_FUNCTIONS)}"
            )
        results = {args.only: figures.FIGURE_FUNCTIONS[args.only]()}
    else:
        results = figures.run_all(quick=not args.full)
    print(render_results(results))
    print(f"\ntotal wall-clock time: {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
