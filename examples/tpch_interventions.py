#!/usr/bin/env python3
"""Trade-restriction planning on the TPC-H-like workload (Section 8.2).

The paper's motivating TPC-H task: *remove the least number of suppliers,
part-supply contracts or orders so that at least ρ% of the trading records
disappear*, where a trading record is an answer of

    Q1(NK, SK, PK, OK) :- Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)

Two variants are compared, exactly as in Figures 7-11:

* ``σ[PK = 13370] Q1`` -- restrict the question to one part.  The selection
  makes the residual query poly-time solvable (Lemma 12), so the exact
  algorithm applies, and the counting mode is shown alongside reporting.
* ``Q1`` without selection -- NP-hard; GreedyForCQ and DrasticGreedy provide
  heuristic answers, and on this (scaled-down) instance the brute force
  baseline confirms the greedy answers are optimal or near-optimal.

Run with:  python examples/tpch_interventions.py
"""

from repro import ADPSolver, Selection, evaluate, is_poly_time_with_selection, solve_with_selection
from repro.core import is_poly_time, summarize_removed
from repro.experiments.harness import run_method, target_from_ratio
from repro.workloads.queries import Q1
from repro.workloads.tpch import SELECTED_PART_KEY, generate_tpch


def main() -> None:
    database = generate_tpch(total_tuples=600, seed=7)
    total = evaluate(Q1, database).output_count()
    print(f"TPC-H-like instance: {database.total_tuples()} input tuples, "
          f"{total} trading records (|Q1(D)|)")

    # ------------------------------------------------------------------ #
    # Variant 1: restricted to one part key (poly-time).
    # ------------------------------------------------------------------ #
    selection = Selection.equals({"PK": SELECTED_PART_KEY})
    print(f"\n-- {selection} Q1 --")
    print("poly-time with this selection?", is_poly_time_with_selection(Q1, selection))
    filtered = selection.apply(Q1, database)
    selected_total = evaluate(Q1, filtered).output_count()
    print(f"records involving part {SELECTED_PART_KEY}: {selected_total}")

    for ratio in (0.25, 0.5, 0.75):
        k = max(1, int(ratio * selected_total))
        exact = solve_with_selection(Q1, selection, database, k, solver=ADPSolver())
        counting = solve_with_selection(
            Q1, selection, database, k, solver=ADPSolver(counting_only=True)
        )
        print(f"  rho={ratio:.0%}: remove {exact.size} tuples "
              f"(optimal={exact.optimal}; counting mode agrees: {counting.size}); "
              f"breakdown {summarize_removed(exact.removed)}")

    # ------------------------------------------------------------------ #
    # Variant 2: the unrestricted query (NP-hard).
    # ------------------------------------------------------------------ #
    print("\n-- Q1 without selection --")
    print("poly-time?", is_poly_time(Q1))
    for ratio in (0.1, 0.25):
        k = target_from_ratio(Q1, database, ratio)
        greedy = run_method(Q1, database, k, "greedy")
        drastic = run_method(Q1, database, k, "drastic")
        print(f"  rho={ratio:.0%} (k={k}): greedy removes {greedy.solution_size} "
              f"tuples in {greedy.seconds:.3f}s, drastic removes "
              f"{drastic.solution_size} in {drastic.seconds:.3f}s")

    # Small-instance calibration against brute force (Figures 12-13).
    small = generate_tpch(total_tuples=60, seed=7)
    k = target_from_ratio(Q1, small, 0.1)
    brute = run_method(Q1, small, k, "bruteforce", bruteforce_max_candidates=2000)
    greedy = run_method(Q1, small, k, "greedy")
    print(f"\ncalibration (60 tuples, rho=10%, k={k}): brute force = "
          f"{brute.solution_size} tuples ({brute.seconds:.3f}s), greedy = "
          f"{greedy.solution_size} tuples ({greedy.seconds:.3f}s)")


if __name__ == "__main__":
    main()
