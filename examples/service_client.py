#!/usr/bin/env python3
"""Talking JSON to the ADP query service.

This example demonstrates the whole ``repro.service`` HTTP API with
nothing but the standard library:

1. start a service (in-process here; ``python -m repro serve`` gives you
   the same thing as a standalone process -- pass ``--url`` to target it);
2. register a database over ``POST /v1/databases``;
3. classify a query (``/v1/prepare``), solve ADP (``/v1/solve`` --
   concurrent solves are micro-batched into one ``solve_many`` call
   server-side), and probe a hypothetical deletion (``/v1/what_if``);
4. apply the deletion for real (``/v1/apply_deletions``) and watch the
   database version bump while post-deletion solves stay consistent;
5. read the service's own telemetry (``/healthz``, ``/metrics``).

Run with:  python examples/service_client.py [--url http://host:port]
"""

import argparse
import http.client
import json

QUERY = "Qwl(S, C) :- Major(S, M), Req(M, C), NoSeat(C)"

REGISTRAR = {
    "name": "registrar",
    "schema": {"Major": ["S", "M"], "Req": ["M", "C"], "NoSeat": ["C"]},
    "rows": {
        "Major": [["alice", "cs"], ["bob", "cs"], ["carol", "math"]],
        "Req": [["cs", "db"], ["cs", "os"], ["math", "calc"]],
        "NoSeat": [["db"], ["os"], ["calc"]],
    },
}


def call(conn, method, path, payload=None):
    conn.request(method, path, json.dumps(payload) if payload else None)
    response = conn.getresponse()
    raw = response.read()
    if response.getheader("Content-Type", "").startswith("application/json"):
        return response.status, json.loads(raw)
    return response.status, raw.decode("utf-8", "replace")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", help="target an external `repro serve` "
                                      "instead of self-hosting")
    args = parser.parse_args()

    runner = None
    if args.url:
        hostport = args.url.split("//", 1)[-1].rstrip("/")
        host, _, port = hostport.partition(":")
        port = int(port or 80)
    else:
        from repro.service import ServiceConfig, ServiceRunner

        runner = ServiceRunner(ServiceConfig(port=0)).start()
        host, port = "127.0.0.1", runner.port
        print(f"self-hosted service at {runner.url}\n")

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        # -- register a database ---------------------------------------- #
        status, body = call(conn, "POST", "/v1/databases", REGISTRAR)
        print(f"registered {body['name']!r}: {body['total_tuples']} tuples, "
              f"version {body['version']}")

        # -- classify the query ----------------------------------------- #
        status, body = call(conn, "POST", "/v1/prepare",
                            {"database": "registrar", "query": QUERY})
        print(f"prepare: {body['classification']} "
              f"(singleton={body['is_singleton']}, "
              f"join order {body['join_order']})")

        # -- solve ADP(Q, D, k=2) --------------------------------------- #
        status, body = call(conn, "POST", "/v1/solve",
                            {"database": "registrar", "query": QUERY, "k": 2})
        print(f"solve k=2: remove {body['objective']} tuple(s) "
              f"{body['removed']} -> kills {body['removed_outputs']} answers "
              f"({body['elapsed_ms']} ms, version {body['version']})")

        # -- what if we deleted the cs->db requirement? ------------------ #
        status, body = call(conn, "POST", "/v1/what_if", {
            "database": "registrar", "query": QUERY,
            "refs": [["Req", ["cs", "db"]]], "include_after": True,
        })
        print(f"what-if Req(cs, db): -{body['outputs_removed']} answers "
              f"({body['output_size_before']} -> {body['output_size_after']}), "
              "database untouched")

        # -- apply a deletion for real ----------------------------------- #
        status, body = call(conn, "POST", "/v1/apply_deletions", {
            "database": "registrar", "refs": [["Req", ["cs", "db"]]],
        })
        print(f"apply_deletions: removed {body['removed']}, "
              f"version now {body['version']}")

        status, body = call(conn, "POST", "/v1/solve",
                            {"database": "registrar", "query": QUERY, "k": 1})
        print(f"solve k=1 at v{body['version']}: remove {body['removed']}")

        # -- telemetry ---------------------------------------------------- #
        status, body = call(conn, "GET", "/healthz")
        print(f"healthz: {body['status']}, "
              f"{body['metrics']['solves_total']} solves served")
        status, text = call(conn, "GET", "/metrics")
        first_counter = next(line for line in text.splitlines()
                             if line.startswith("repro_service_requests_total{"))
        print(f"metrics sample: {first_counter}")
    finally:
        conn.close()
        if runner is not None:
            runner.close()


if __name__ == "__main__":
    main()
