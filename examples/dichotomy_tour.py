#!/usr/bin/env python3
"""A tour of the ADP dichotomy on the paper's queries.

For every named query of the paper (and a few extra corner cases) this
example prints:

* the verdict of the *algorithmic* dichotomy ``IsPtime`` (Theorem 2) with its
  simplification trace,
* the verdict of the *structural* dichotomy (Theorem 3) with the hard
  structure found (triad-like, strand, or non-hierarchical head join of
  non-dominated relations),
* for NP-hard queries, a hardness certificate: the core query
  (Qpath/Qswing/Qseesaw) it maps to.

The two dichotomies always agree -- that equivalence is Theorem 3, and it is
also enforced by a hypothesis property test in the test-suite.

Run with:  python examples/dichotomy_tour.py
"""

from repro import decide, diagnose, hardness_certificate, parse_query
from repro.core import find_core_mapping, hard_leaf_subqueries
from repro.workloads.queries import QUERY_CATALOG

EXTRA_QUERIES = [
    # The running example of Section 4 (Example 4): NP-hard via Q1's component.
    parse_query("Qex4(A, F, G, H) :- R1(A, B), R2(F, G), R3(B, C), R4(C), R5(G, H)"),
    # Boolean triangle (the classical triad) and the hierarchical full CQ of Figure 5.
    parse_query("Qtriangle() :- R1(A, B), R2(B, C), R3(C, A)"),
    parse_query("Qhier(A, B, C, E, F, H) :- R1(A, B, C), R2(A, B, F), R3(A, E), R4(A, E, H)"),
    # The strand example of Section 5.2.3.
    parse_query("Qstrand(A, B, C) :- R1(A, B, E), R2(A, C, E)"),
    # Adding a universal attribute to a hard query makes it easy.
    parse_query("Quniv(A) :- R1(A, C, E), R2(A, E, F), R3(A, F, H)"),
]


def describe(query) -> None:
    trace = decide(query)
    diagnosis = diagnose(query)
    verdict = "poly-time" if trace.poly_time else "NP-hard"
    print("=" * 78)
    print(f"{query}")
    print(f"  verdict: {verdict}  (structural dichotomy agrees: "
          f"{diagnosis.poly_time == trace.poly_time})")
    for line in trace.explain().splitlines():
        print(f"  {line}")
    if diagnosis.np_hard:
        print(f"  hard structures: {'; '.join(diagnosis.hard_structures())}")
        for leaf in hard_leaf_subqueries(query):
            mapping = find_core_mapping(leaf)
            if mapping is not None:
                print(f"  hard leaf {leaf.name} maps to {mapping.target.name}: {mapping}")
        certificate = hardness_certificate(query)
        if certificate:
            print("  certificate:")
            for line in certificate.splitlines():
                print(f"    {line}")
    print()


def main() -> None:
    for name, query in QUERY_CATALOG.items():
        describe(query)
    for query in EXTRA_QUERIES:
        describe(query)


if __name__ == "__main__":
    main()
