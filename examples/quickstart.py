#!/usr/bin/env python3
"""Quickstart: the ADP problem in five minutes.

This example walks through the public API end to end:

1. bind a :class:`repro.Session` to a small in-memory database;
2. prepare a conjunctive query (parse + dichotomy + join plan, once);
3. ask the dichotomy whether ADP is poly-time solvable for the query
   (and why);
4. solve ADP exactly / heuristically, batch solves, read the cost curve;
5. probe deletions incrementally (what-if) and apply them in place.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    Session,
    decide,
    diagnose,
    hardness_certificate,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A small registrar database, bound to a session.  The session owns
    #    the evaluation cache, the engine mode and the interning tables --
    #    one "connection" per tenant.
    # ------------------------------------------------------------------ #
    database = Database.from_dict(
        {"Major": ["S", "M"], "Req": ["M", "C"], "NoSeat": ["C"]},
        {
            "Major": [
                ("alice", "cs"),
                ("bob", "cs"),
                ("carol", "math"),
                ("dave", "math"),
                ("erin", "cs"),
            ],
            "Req": [
                ("cs", "databases"),
                ("cs", "os"),
                ("math", "algebra"),
                ("math", "databases"),
            ],
            "NoSeat": [("databases",), ("os",)],
        },
    )
    session = Session(database)

    # ------------------------------------------------------------------ #
    # 2. Prepare the query: which students are waitlisted for which class?
    #    (Example 1 of the paper.)  Parsing, classification and the join
    #    plan happen once; the object is reusable across databases and k.
    # ------------------------------------------------------------------ #
    waitlist = session.prepare("QWL(S, C) :- Major(S, M), Req(M, C), NoSeat(C)")
    print("query:", waitlist.query)
    print("classification:", waitlist.classification)

    result = session.evaluate(waitlist)
    print(f"|QWL(D)| = {result.output_count()} waitlist entries:")
    for row in sorted(result.output_rows):
        print("   ", row)

    # ------------------------------------------------------------------ #
    # 3. The dichotomy: is ADP easy or hard for this query?
    # ------------------------------------------------------------------ #
    print("\nIsPtime(QWL):", waitlist.is_poly_time)
    print(decide(waitlist.query).explain())
    print("\nstructural diagnosis:", diagnose(waitlist.query))
    certificate = hardness_certificate(waitlist.query)
    if certificate:
        print(certificate)

    # ------------------------------------------------------------------ #
    # 4. Solve: shrink the waitlist by at least 4 entries with the fewest
    #    interventions (dropping a major declaration, relaxing a
    #    requirement, or opening seats in a class).
    # ------------------------------------------------------------------ #
    solution = session.solve(waitlist, k=4)   # greedy at NP-hard leaves
    print("\nsolution:", solution)
    for ref in sorted(solution.removed, key=str):
        print("    remove", ref)

    # Batched targets share one evaluation and one cost curve:
    print("\ncost for every target at once:")
    for s in session.solve_many([(waitlist, k) for k in (1, 2, 4)]):
        print(f"    k={s.k}: delete {s.objective} input tuple(s)")
    curve = session.curve(waitlist, kmax=result.output_count())
    print("full curve:", [curve.cost(k) for k in range(result.output_count() + 1)])

    # ------------------------------------------------------------------ #
    # 5. Incremental deletions.  what_if answers from cached provenance by
    #    a delta semijoin (no re-join, no database copy); apply_deletions
    #    commits in place and migrates the cache across the version bump.
    # ------------------------------------------------------------------ #
    probe = session.what_if(solution.removed, waitlist).single
    print(f"\nwhat-if: deleting the solution removes {probe.outputs_removed} "
          f"outputs / {probe.witnesses_removed} witnesses (target was 4)")

    # apply_deletions mutates the bound database in place, so snapshot the
    # relations the contrast example below needs first.
    easy_database = database.restricted_to(("Req", "NoSeat"))
    session.apply_deletions(solution.removed)
    after = session.evaluate(waitlist)
    print(f"after applying: |QWL(D)| = {after.output_count()}")
    print("session stats:", session.stats.as_dict())

    # A poly-time example for contrast: with a *universal* output attribute
    # the query becomes easy and the solver is exact.
    easy_session = Session(easy_database)
    easy = easy_session.prepare("QperMajor(M, C) :- Req(M, C), NoSeat(C)")
    print("\nIsPtime(QperMajor):", easy.is_poly_time)
    print("exact solution:", easy_session.solve(easy, k=2))


if __name__ == "__main__":
    main()
