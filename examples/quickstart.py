#!/usr/bin/env python3
"""Quickstart: the ADP problem in five minutes.

This example walks through the public API end to end:

1. define a conjunctive query with the datalog-style parser;
2. build a small in-memory database;
3. ask the dichotomy whether ADP is poly-time solvable for the query
   (and why);
4. solve ADP exactly / heuristically and inspect the solution;
5. verify the solution against the database.

Run with:  python examples/quickstart.py
"""

from repro import (
    ADPSolver,
    Database,
    compute_adp,
    decide,
    diagnose,
    evaluate,
    hardness_certificate,
    is_poly_time,
    parse_query,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A query: which students are waitlisted for which class?
    #    (Example 1 of the paper.)
    # ------------------------------------------------------------------ #
    waitlist = parse_query("QWL(S, C) :- Major(S, M), Req(M, C), NoSeat(C)")
    print("query:", waitlist)

    # ------------------------------------------------------------------ #
    # 2. A small registrar database.
    # ------------------------------------------------------------------ #
    database = Database.from_dict(
        {"Major": ["S", "M"], "Req": ["M", "C"], "NoSeat": ["C"]},
        {
            "Major": [
                ("alice", "cs"),
                ("bob", "cs"),
                ("carol", "math"),
                ("dave", "math"),
                ("erin", "cs"),
            ],
            "Req": [
                ("cs", "databases"),
                ("cs", "os"),
                ("math", "algebra"),
                ("math", "databases"),
            ],
            "NoSeat": [("databases",), ("os",)],
        },
    )
    result = evaluate(waitlist, database)
    print(f"|QWL(D)| = {result.output_count()} waitlist entries:")
    for row in sorted(result.output_rows):
        print("   ", row)

    # ------------------------------------------------------------------ #
    # 3. The dichotomy: is ADP easy or hard for this query?
    # ------------------------------------------------------------------ #
    print("\nIsPtime(QWL):", is_poly_time(waitlist))
    print(decide(waitlist).explain())
    print("\nstructural diagnosis:", diagnose(waitlist))
    certificate = hardness_certificate(waitlist)
    if certificate:
        print(certificate)

    # ------------------------------------------------------------------ #
    # 4. Solve: shrink the waitlist by at least 4 entries with the fewest
    #    interventions (dropping a major declaration, relaxing a
    #    requirement, or opening seats in a class).
    # ------------------------------------------------------------------ #
    solver = ADPSolver()          # greedy at NP-hard leaves (this query is hard)
    solution = solver.solve(waitlist, database, k=4)
    print("\nsolution:", solution)
    for ref in sorted(solution.removed, key=str):
        print("    remove", ref)

    # ------------------------------------------------------------------ #
    # 5. Verify against the database.
    # ------------------------------------------------------------------ #
    removed = solution.verify(database)
    print(f"re-evaluated: removing {solution.size} input tuple(s) deletes "
          f"{removed} waitlist entries (target was 4)")

    # A poly-time example for contrast: with a *universal* output attribute
    # the query becomes easy and the solver is exact.
    easy = parse_query("QperMajor(M, C) :- Req(M, C), NoSeat(C)")
    print("\nIsPtime(QperMajor):", is_poly_time(easy))
    easy_solution = compute_adp(
        easy, database.restricted_to(("Req", "NoSeat")), k=2
    )
    print("exact solution:", easy_solution)


if __name__ == "__main__":
    main()
