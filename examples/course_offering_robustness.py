#!/usr/bin/env python3
"""Robustness of course offerings (Example 2 of the paper).

``QPossible(C) :- Teaches(P, C), NotOnLeave(P)`` lists the courses that can
be offered next semester: a course is offered if some professor can teach it
and is not on leave.  The university wants to know how fragile this plan is:

* the **resilience** of the query -- the minimum number of changes (a
  professor taking leave, or withdrawing from a course) that would cancel at
  least one course;
* the full **robustness profile** -- how many changes are needed to cancel
  10%, 25%, 50%, ... of the catalogue (this is ADP with k = ρ·|Q(D)|).

``QPossible`` has exactly the shape of the core hard query ``Qswing``
(Section 4.2.1), so ADP is NP-hard for it and the profile below is computed
by the ``GreedyForCQ`` heuristic -- on an instance this small the greedy
answers coincide with the optimum (the test-suite checks this against brute
force), but in general they are upper bounds.

Run with:  python examples/course_offering_robustness.py
"""

from repro import (
    ADPSolver,
    Database,
    evaluate,
    is_poly_time,
    parse_query,
    resilience,
    robustness_profile,
)

QPOSSIBLE = parse_query("QPossible(C) :- Teaches(P, C), NotOnLeave(P)")


def build_department() -> Database:
    """A small CS department: professors, teachable courses, leave status."""
    teaches = [
        ("prof_ada", "compilers"),
        ("prof_ada", "databases"),
        ("prof_bob", "databases"),
        ("prof_bob", "os"),
        ("prof_cyn", "ml"),
        ("prof_cyn", "databases"),
        ("prof_dan", "networks"),
        ("prof_eve", "ml"),
        ("prof_eve", "theory"),
        ("prof_fay", "theory"),
    ]
    not_on_leave = [
        ("prof_ada",),
        ("prof_bob",),
        ("prof_cyn",),
        ("prof_dan",),
        ("prof_eve",),
        # prof_fay is already on leave: no tuple for her.
    ]
    return Database.from_dict(
        {"Teaches": ["P", "C"], "NotOnLeave": ["P"]},
        {"Teaches": teaches, "NotOnLeave": not_on_leave},
    )


def main() -> None:
    database = build_department()
    offered = evaluate(QPOSSIBLE, database)
    print("courses that can be offered:", sorted(c for (c,) in offered.output_rows))
    print("ADP poly-time solvable for QPossible?", is_poly_time(QPOSSIBLE))

    # Resilience of the boolean version: the minimum number of changes that
    # would leave *no* course offerable at all.
    res = resilience(QPOSSIBLE, database)
    print(f"\nresilience = {res.size}: at least {res.size} change(s) are "
          "needed before the department can offer nothing at all "
          f"(optimal={res.optimal}, via the min-cut construction)")

    # Robustness profile: interventions needed to cancel a fraction of courses.
    print("\nrobustness profile (greedy upper bounds, source side-effect):")
    print("  rho   k   interventions  what to change")
    solver = ADPSolver()
    for ratio, k, solution in robustness_profile(
        QPOSSIBLE, database, ratios=(0.2, 0.4, 0.6, 0.8, 1.0), solver=solver
    ):
        changes = ", ".join(str(ref) for ref in sorted(solution.removed, key=str))
        print(f"  {ratio:>3.0%}  {k:>2}  {solution.size:>13}  {changes}")

    # Interpretation, as in the paper: if cancelling a large fraction of the
    # catalogue only needs a couple of changes, the offering plan is fragile
    # and hiring (or denying leave) should be considered.
    profile = robustness_profile(QPOSSIBLE, database, ratios=(0.5,), solver=solver)
    _, k, half = profile[0]
    if half.size <= 2:
        print(f"\nfragile: removing only {half.size} input tuple(s) already "
              f"cancels {k} course(s).")
    else:
        print(f"\nrobust: cancelling {k} course(s) needs {half.size} changes.")


if __name__ == "__main__":
    main()
