#!/usr/bin/env python3
"""Network robustness via aggregated deletion propagation (Example 3).

``Q3path(A, B, C, D) :- R1(A, B), R2(B, C), R3(C, D)`` enumerates the
three-hop paths of a layered communication network.  ADP answers the
robustness question of the paper's introduction: *how many links must fail
(or be attacked) before a given fraction of the paths disappears?*  A network
where 1% of the links carry 80% of the paths is fragile; one where you must
destroy most links to lose most paths is robust.

This example builds two synthetic three-layer networks with the same number
of links -- one with a few heavily-loaded hub links, one with evenly spread
links -- and compares their ADP profiles.  Q3path is NP-hard for ADP
(``is_poly_time`` is False), so the numbers are heuristic upper bounds from
``GreedyForCQ``/``DrasticGreedy``; on the small hub network we also show the
brute-force optimum for calibration.

Run with:  python examples/network_robustness.py
"""

import random

from repro import ADPSolver, Database, evaluate, is_poly_time, parse_query
from repro.core import bruteforce_solve

Q3PATH = parse_query("Q3path(A, B, C, D) :- R1(A, B), R2(B, C), R3(C, D)")


def hub_network(width: int = 6) -> Database:
    """A network where one middle link per layer carries almost all paths."""
    r1 = [(f"s{i}", "hub1") for i in range(width)] + [("s_extra", "b_side")]
    r2 = [("hub1", "hub2"), ("b_side", "c_side")]
    r3 = [("hub2", f"t{i}") for i in range(width)] + [("c_side", "t_side")]
    return Database.from_dict(
        {"R1": ["A", "B"], "R2": ["B", "C"], "R3": ["C", "D"]},
        {"R1": r1, "R2": r2, "R3": r3},
    )


def mesh_network(width: int = 4, seed: int = 3) -> Database:
    """A network with evenly spread links (no dominant hub)."""
    rng = random.Random(seed)
    lefts = [f"s{i}" for i in range(width)]
    mid1 = [f"m{i}" for i in range(width)]
    mid2 = [f"n{i}" for i in range(width)]
    rights = [f"t{i}" for i in range(width)]
    r1 = [(a, rng.choice(mid1)) for a in lefts for _ in range(2)]
    r2 = [(b, rng.choice(mid2)) for b in mid1 for _ in range(2)]
    r3 = [(c, rng.choice(rights)) for c in mid2 for _ in range(2)]
    return Database.from_dict(
        {"R1": ["A", "B"], "R2": ["B", "C"], "R3": ["C", "D"]},
        {"R1": set(r1), "R2": set(r2), "R3": set(r3)},
    )


def profile(name: str, database: Database, ratios=(0.25, 0.5, 0.8)) -> None:
    total_links = database.total_tuples()
    paths = evaluate(Q3PATH, database).output_count()
    print(f"\n{name}: {total_links} links, {paths} three-hop paths")
    solver = ADPSolver(heuristic="greedy")
    for ratio in ratios:
        k = max(1, int(ratio * paths))
        solution = solver.solve(Q3PATH, database, k)
        share = solution.size / total_links
        print(
            f"  disrupt >= {ratio:>3.0%} of paths ({k:>3} paths): "
            f"remove {solution.size:>2} links ({share:.0%} of the network) "
            f"[greedy upper bound]"
        )


def main() -> None:
    print("Q3path poly-time solvable for ADP?", is_poly_time(Q3PATH))

    hub = hub_network()
    mesh = mesh_network()
    profile("hub-and-spoke network (fragile)", hub)
    profile("meshed network (robust)", mesh)

    # Calibrate the heuristic on the small hub network with brute force.
    paths = evaluate(Q3PATH, hub).output_count()
    k = max(1, int(0.8 * paths))
    exact = bruteforce_solve(Q3PATH, hub, k, max_candidates=40)
    greedy = ADPSolver().solve(Q3PATH, hub, k)
    print(
        f"\ncalibration on the hub network (k={k}): "
        f"brute-force optimum = {exact.size}, greedy = {greedy.size}"
    )


if __name__ == "__main__":
    main()
