"""Figure 13: BruteForce vs the heuristics on a small Q1 instance (quality).

Paper's claim: on instances small enough for brute force, the heuristics find
solutions of the same (optimal) size.
"""

import pytest

from repro.core.adp import ADPSolver
from repro.core.bruteforce import bruteforce_solve
from repro.experiments.harness import target_from_ratio
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch


@pytest.mark.parametrize("size", [50, 70])
def test_fig13_quality_matches_optimum(benchmark, size):
    database = generate_tpch(total_tuples=size, seed=7)
    k = target_from_ratio(Q1, database, 0.1)

    def run_all():
        optimum = bruteforce_solve(Q1, database, k, max_candidates=2000)
        greedy = ADPSolver(heuristic="greedy").solve(Q1, database, k)
        drastic = ADPSolver(heuristic="drastic").solve(Q1, database, k)
        return optimum, greedy, drastic

    optimum, greedy, drastic = benchmark(run_all)
    benchmark.extra_info.update(
        {
            "figure": "13",
            "input_size": database.total_tuples(),
            "k": k,
            "bruteforce_size": optimum.size,
            "greedy_size": greedy.size,
            "drastic_size": drastic.size,
        }
    )
    assert optimum.optimal
    assert greedy.size >= optimum.size
    assert drastic.size >= optimum.size
    # The paper reports coinciding quality at this scale; allow a tiny slack.
    assert greedy.size <= optimum.size + 1
    assert drastic.size <= optimum.size + 1
