"""Ablation (beyond the paper's figures): greedy candidate restriction.

Lemma 13 justifies restricting the greedy heuristic's candidate deletions to
endogenous relations.  This ablation measures the cost of dropping that
restriction: the unrestricted variant considers more candidates per
iteration (slower) without improving quality.
"""

import pytest

from repro.core.greedy import greedy_curve
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch

RATIO = 0.25


@pytest.fixture(scope="module")
def instance():
    database = generate_tpch(total_tuples=300, seed=7)
    total = evaluate(Q1, database).output_count()
    return database, max(1, int(RATIO * total))


@pytest.mark.parametrize("endogenous_only", [True, False], ids=["endogenous-only", "all-relations"])
def test_ablation_greedy_candidate_restriction(benchmark, instance, endogenous_only):
    database, k = instance

    cost = benchmark(
        lambda: greedy_curve(Q1, database, kmax=k, endogenous_only=endogenous_only).cost(k)
    )
    benchmark.extra_info.update(
        {"ablation": "endogenous-restriction", "endogenous_only": endogenous_only, "k": k, "cost": cost}
    )
    assert cost >= 1
