#!/usr/bin/env python
"""Load harness for the ADP query service (closed + open loop).

Drives ``repro serve`` (an external ``--url``, or a self-hosted in-process
service) with the stdlib ``http.client`` over persistent keep-alive
connections and records throughput and latency percentiles to the
committed trajectory file ``benchmarks/BENCH_service.json``.

Workload mixes (registered over ``POST /v1/databases``):

* ``easy`` -- the singleton query ``Q6(A, B) :- R1(A), R2(A, B)`` on a
  2k-tuple Zipf instance: cheap poly-time solves, the request-rate mix
  (CI asserts >= 200 req/s on it);
* ``hard`` -- the NP-hard projection ``Qh(A) :- R1(A), R2(A, B), R3(B)``
  on a 60k-tuple Zipf instance: greedy-curve-dominated solves, the mix
  where micro-batching pays.

``--compare-batching`` measures the same fixed hard-mix request set twice
-- once with per-request dispatch (``"batch": false``) and once through
the micro-batcher -- and asserts the batched throughput multiple
(``--assert-speedup 2`` in CI: coalescing shares one evaluation and one
cost curve per batch, per-request dispatch recomputes the curve every
time).

``--compare-mutations`` interleaves ``POST /v1/apply_insertions`` batches
with solves on the hard mix and compares the incremental leg (delta join
+ in-place cache migration) against re-registering the identical grown
database and solving cold (``--assert-speedup 5`` in CI: the delta join
touches only new witnesses, the fresh leg re-joins everything).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --mix easy --mode both
    PYTHONPATH=src python benchmarks/bench_service.py --url http://127.0.0.1:8080 \
        --mix easy --duration 10 --assert-throughput 200 --record
    PYTHONPATH=src python benchmarks/bench_service.py --compare-batching \
        --assert-speedup 2 --record
    PYTHONPATH=src python benchmarks/bench_service.py --compare-mutations \
        --assert-speedup 5 --record
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import statistics
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, List, Optional, Tuple

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_service.json"

HARD_QUERY = "Qh(A) :- R1(A), R2(A, B), R3(B)"
EASY_QUERY = "Q6(A, B) :- R1(A), R2(A, B)"
HARD_SIZE = 60_000
EASY_SIZE = 2_000


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
class Client:
    """One persistent keep-alive connection (one per worker thread)."""

    def __init__(self, host: str, port: int, timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def post(self, path: str, payload: dict) -> Tuple[int, dict]:
        body = json.dumps(payload)
        try:
            self.conn.request("POST", path, body)
            response = self.conn.getresponse()
            return response.status, json.loads(response.read())
        except (http.client.HTTPException, OSError):
            # Keep-alive connection went stale: reconnect once.
            self.conn.close()
            self.conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.conn.request("POST", path, body)
            response = self.conn.getresponse()
            return response.status, json.loads(response.read())

    def get(self, path: str) -> Tuple[int, bytes]:
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        return response.status, response.read()

    def close(self) -> None:
        self.conn.close()


def parse_url(url: str) -> Tuple[str, int]:
    stripped = url.split("//", 1)[-1].rstrip("/")
    host, _sep, port = stripped.partition(":")
    return host, int(port or 80)


# --------------------------------------------------------------------------- #
# Workload registration and request factories
# --------------------------------------------------------------------------- #
def register_workload(client: Client, mix: str, size: int) -> str:
    from repro.service.serialize import database_to_wire
    from repro.workloads.zipf import generate_zipf_path

    name = f"zipf_{mix}_{size}"
    if mix == "hard":
        database = generate_zipf_path(r2_tuples=size, alpha=1.1, seed=13)
    else:
        database = generate_zipf_path(r2_tuples=size, alpha=0.5, seed=7)
    status, body = client.post(
        "/v1/databases",
        {"name": name, "replace": True, **database_to_wire(database)},
    )
    if status != 200:
        raise SystemExit(f"registering {name} failed: {status} {body}")
    print(f"registered {name}: {body['total_tuples']} tuples")
    return name


def request_factory(mix: str, database: str) -> Callable[[int], dict]:
    if mix == "hard":
        # Targets vary per request, so batched dispatch must genuinely read
        # different k off one shared curve (not serve one memoized answer).
        return lambda i: {
            "database": database,
            "query": HARD_QUERY,
            "k": 150 + (i % 8) * 10,
            "method": "greedy",
        }
    return lambda i: {
        "database": database,
        "query": EASY_QUERY,
        "k": 1 + (i % 5),
    }


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
def summarize(latencies_ms: List[float], wall_s: float, errors: int,
              rejected: int) -> dict:
    latencies = sorted(latencies_ms)

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(round(p / 100.0 * (len(latencies) - 1))))
        return round(latencies[index], 3)

    return {
        "requests": len(latencies),
        "errors": errors,
        "rejected": rejected,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "mean": round(statistics.fmean(latencies), 3) if latencies else 0.0,
            "p50": pct(50), "p90": pct(90), "p99": pct(99),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
    }


def closed_loop(
    host: str,
    port: int,
    factory: Callable[[int], dict],
    *,
    concurrency: int,
    duration_s: Optional[float] = None,
    total_requests: Optional[int] = None,
    batch: bool = True,
) -> dict:
    """N workers, each issuing its next request as soon as the last returns."""
    assert (duration_s is None) != (total_requests is None)
    latencies: List[float] = []
    errors = [0]
    rejected = [0]
    lock = threading.Lock()
    counter = [0]
    stop = threading.Event()

    def next_index() -> Optional[int]:
        with lock:
            if total_requests is not None and counter[0] >= total_requests:
                return None
            counter[0] += 1
            return counter[0] - 1

    def worker() -> None:
        client = Client(host, port)
        try:
            while not stop.is_set():
                index = next_index()
                if index is None:
                    return
                payload = dict(factory(index))
                payload["batch"] = batch
                started = time.perf_counter()
                status, _body = client.post("/v1/solve", payload)
                elapsed = (time.perf_counter() - started) * 1000.0
                with lock:
                    if status == 200:
                        latencies.append(elapsed)
                    elif status == 429:
                        rejected[0] += 1
                    else:
                        errors[0] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    if duration_s is not None:
        time.sleep(duration_s)
        stop.set()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    stats = summarize(latencies, wall, errors[0], rejected[0])
    stats.update({"mode": "closed", "concurrency": concurrency, "batch": batch})
    return stats


def open_loop(
    host: str,
    port: int,
    factory: Callable[[int], dict],
    *,
    rate_rps: float,
    duration_s: float,
    max_workers: int = 32,
) -> dict:
    """Fixed arrival rate; latency includes queueing (the serving view)."""
    latencies: List[float] = []
    errors = [0]
    rejected = [0]
    lock = threading.Lock()
    interval = 1.0 / rate_rps
    total = int(rate_rps * duration_s)
    dispatch_times = [i * interval for i in range(total)]
    cursor = [0]
    start = time.perf_counter()

    def worker() -> None:
        client = Client(host, port)
        try:
            while True:
                with lock:
                    if cursor[0] >= total:
                        return
                    index = cursor[0]
                    cursor[0] += 1
                target = start + dispatch_times[index]
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                status, _body = client.post("/v1/solve", factory(index))
                elapsed = (time.perf_counter() - target) * 1000.0
                with lock:
                    if status == 200:
                        latencies.append(elapsed)
                    elif status == 429:
                        rejected[0] += 1
                    else:
                        errors[0] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(max_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    stats = summarize(latencies, wall, errors[0], rejected[0])
    stats.update({"mode": "open", "offered_rps": rate_rps})
    return stats


# --------------------------------------------------------------------------- #
# Batched vs per-request comparison (the >= 2x acceptance run)
# --------------------------------------------------------------------------- #
def compare_batching(host: str, port: int, database: str, *,
                     total_requests: int, concurrency: int) -> dict:
    factory = request_factory("hard", database)
    warm = Client(host, port)
    try:
        # Warm the session's evaluation cache so both runs measure dispatch
        # strategy, not the shared first join.
        status, body = warm.post("/v1/solve", {**factory(0), "batch": False})
        if status != 200:
            raise SystemExit(f"warm-up solve failed: {status} {body}")
    finally:
        warm.close()
    per_request = closed_loop(
        host, port, factory,
        concurrency=concurrency, total_requests=total_requests, batch=False,
    )
    print(f"  per-request dispatch: {per_request['throughput_rps']} req/s "
          f"(p50 {per_request['latency_ms']['p50']} ms)")
    batched = closed_loop(
        host, port, factory,
        concurrency=concurrency, total_requests=total_requests, batch=True,
    )
    print(f"  batched dispatch:     {batched['throughput_rps']} req/s "
          f"(p50 {batched['latency_ms']['p50']} ms)")
    speedup = (
        batched["throughput_rps"] / per_request["throughput_rps"]
        if per_request["throughput_rps"]
        else 0.0
    )
    print(f"  batched/per-request speedup: {speedup:.2f}x")
    return {
        "per_request": per_request,
        "batched": batched,
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Incremental insertion vs fresh re-evaluation (the >= 5x acceptance run)
# --------------------------------------------------------------------------- #
def mutation_batches(database, rounds: int, batch_size: int, seed: int):
    """Deterministic fresh R2 edges recombined from the stored endpoints.

    Recombination keeps the inserts inside the join's value domain, so a
    healthy fraction produce new witnesses -- the expensive case for a
    from-scratch rebuild and the interesting one for the delta join.
    """
    from repro.data.relation import TupleRef

    rng = random.Random(seed)
    rows = sorted(database.relation("R2").rows)
    stored = set(rows)
    batches = []
    for _ in range(rounds):
        batch = []
        attempts = 0
        while len(batch) < batch_size and attempts < batch_size * 50:
            attempts += 1
            edge = (rng.choice(rows)[0], rng.choice(rows)[1])
            if edge in stored:
                continue
            stored.add(edge)
            batch.append(TupleRef("R2", edge))
        batches.append(batch)
    return batches


def compare_mutations(host: str, port: int, database: str, *,
                      size: int, rounds: int, batch_size: int,
                      seed: int) -> dict:
    """Mixed-mutation scenario: apply insert batches, then solve.

    The incremental leg POSTs ``/v1/apply_insertions`` (delta join +
    in-place cache migration) and re-reads through a what-if probe on the
    migrated entry (a cache hit: only the probe itself runs).  The fresh
    leg re-registers the identical cumulative database under a scratch
    name (untimed -- generous to the baseline) and probes cold, which
    re-runs the full join.  Both probes answer over the same data, so the
    speedup isolates evaluation strategy.
    """
    from repro.data.relation import TupleRef
    from repro.service.serialize import database_to_wire, refs_to_json
    from repro.workloads.zipf import generate_zipf_path

    local = generate_zipf_path(r2_tuples=size, alpha=1.1, seed=13)
    # One extra batch: an untimed warm-up mutation so one-time lazy costs
    # (probe hash groups, postings) land outside the measured rounds and
    # both legs are compared in steady state.
    warm_up, *batches = mutation_batches(local, rounds + 1, batch_size, seed)
    # A fixed stored edge (never mutated) keeps the probe identical across
    # rounds and legs.
    probe = refs_to_json([TupleRef("R2", sorted(local.relation("R2").rows)[0])])
    what_if = {"database": database, "query": HARD_QUERY, "refs": probe}
    fresh_name = f"{database}_fresh"
    client = Client(host, port)
    incremental_ms: List[float] = []
    fresh_ms: List[float] = []
    try:
        # Warm the incremental session: the deltas migrate this entry.
        status, body = client.post("/v1/what_if", what_if)
        if status != 200:
            raise SystemExit(f"warm-up what-if failed: {status} {body}")
        status, body = client.post(
            "/v1/apply_insertions",
            {"database": database, "refs": refs_to_json(warm_up)},
        )
        if status != 200:
            raise SystemExit(f"warm-up insertions failed: {status} {body}")
        local.insert_tuples(warm_up)
        status, body = client.post("/v1/what_if", what_if)
        if status != 200:
            raise SystemExit(f"warm-up what-if failed: {status} {body}")

        # Phase 1 -- incremental: apply each batch, re-read through the
        # migrated entry.  All rounds run back to back so the fresh leg's
        # session churn (84k-tuple re-registrations and evictions) cannot
        # bleed GC pauses into these timings.
        incremental_reads = []
        for batch in batches:
            started = time.perf_counter()
            status, applied = client.post(
                "/v1/apply_insertions",
                {"database": database, "refs": refs_to_json(batch)},
            )
            if status != 200 or applied["added"] != len(batch):
                raise SystemExit(
                    f"apply_insertions failed: {status} {applied}")
            status, incremental = client.post("/v1/what_if", what_if)
            if status != 200:
                raise SystemExit(f"incremental what-if failed: {status}")
            incremental_ms.append((time.perf_counter() - started) * 1000.0)
            incremental_reads.append(incremental)

        # Phase 2 -- fresh: replay the same cumulative states cold.  The
        # re-registration itself is untimed (generous to the baseline);
        # only the evaluation-bearing probe is measured.
        for index, batch in enumerate(batches, 1):
            local.insert_tuples(batch)
            status, body = client.post(
                "/v1/databases",
                {"name": fresh_name, "replace": True,
                 **database_to_wire(local)},
            )
            if status != 200:
                raise SystemExit(f"re-registering failed: {status} {body}")
            started = time.perf_counter()
            status, fresh = client.post(
                "/v1/what_if", {**what_if, "database": fresh_name})
            if status != 200:
                raise SystemExit(f"fresh what-if failed: {status}")
            fresh_ms.append((time.perf_counter() - started) * 1000.0)
            incremental = incremental_reads[index - 1]
            for field in ("outputs_removed", "witnesses_removed",
                          "output_size_before", "witness_count_before"):
                if incremental[field] != fresh[field]:
                    raise SystemExit(
                        f"round {index}: incremental/fresh diverge on "
                        f"{field}: {incremental[field]} vs {fresh[field]}")
            print(f"  round {index}: +{len(batch)} tuples  "
                  f"incremental {incremental_ms[index - 1]:.1f} ms  "
                  f"fresh {fresh_ms[-1]:.1f} ms")
    finally:
        client.close()
    incremental_s = sum(incremental_ms) / 1000.0
    fresh_s = sum(fresh_ms) / 1000.0
    speedup = fresh_s / incremental_s if incremental_s else 0.0
    print(f"  incremental total {incremental_s:.2f} s, "
          f"fresh total {fresh_s:.2f} s, speedup {speedup:.2f}x")
    return {
        "rounds": rounds,
        "batch_size": batch_size,
        "seed": seed,
        "incremental": {
            "total_s": round(incremental_s, 3),
            "per_round_ms": [round(v, 2) for v in incremental_ms],
        },
        "fresh": {
            "total_s": round(fresh_s, 3),
            "per_round_ms": [round(v, 2) for v in fresh_ms],
        },
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------------- #
def record_runs(path: Path, entries: List[dict]) -> None:
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from _trajectory import load_trajectory

    trajectory = load_trajectory(path, {
        "description": "ADP service load-harness trajectory "
        "(benchmarks/bench_service.py)",
        "runs": [],
    })
    trajectory["runs"].extend(entries)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"recorded {len(entries)} run(s) to {path} "
          f"({len(trajectory['runs'])} total)")


def scrape_health(host: str, port: int) -> dict:
    client = Client(host, port)
    try:
        status, body = client.get("/healthz")
        return json.loads(body).get("metrics", {}) if status == 200 else {}
    finally:
        client.close()


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--url", help="target service (default: self-host)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "python", "numpy"],
                        help="backend for the self-hosted service")
    parser.add_argument("--mix", default="easy", choices=["easy", "hard"])
    parser.add_argument("--mode", default="closed",
                        choices=["closed", "open", "both"])
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds per load run")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="open-loop offered load (req/s)")
    parser.add_argument("--hard-size", type=int, default=HARD_SIZE,
                        help="R2 tuples of the hard-mix Zipf instance")
    parser.add_argument("--easy-size", type=int, default=EASY_SIZE)
    parser.add_argument("--batch-linger-ms", type=float, default=5.0,
                        help="self-hosted service batch window")
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--compare-batching", action="store_true",
                        help="run the batched-vs-per-request hard-mix "
                        "comparison instead of a load run")
    parser.add_argument("--compare-requests", type=int, default=12)
    parser.add_argument("--compare-concurrency", type=int, default=6)
    parser.add_argument("--compare-mutations", action="store_true",
                        help="run the incremental-insert vs fresh "
                        "re-evaluation hard-mix comparison")
    parser.add_argument("--mutation-rounds", type=int, default=5)
    parser.add_argument("--mutation-batch", type=int, default=500,
                        help="tuples inserted per mutation round")
    parser.add_argument("--mutation-seed", type=int,
                        default=int(os.environ.get("REPRO_TEST_SEED", 101)),
                        help="batch-generation seed (default: "
                        "REPRO_TEST_SEED or 101)")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        help="fail unless the comparison speedup >= this")
    parser.add_argument("--assert-throughput", type=float, default=None,
                        help="fail unless closed-loop req/s >= this")
    parser.add_argument("--record", nargs="?", const=str(RECORD_PATH),
                        default=None, metavar="PATH",
                        help=f"append results to PATH "
                        f"(default: {RECORD_PATH.name})")
    args = parser.parse_args(argv)

    runner = None
    if args.url:
        host, port = parse_url(args.url)
    else:
        from repro.service.http import ServiceConfig, ServiceRunner

        runner = ServiceRunner(ServiceConfig(
            port=0, backend=args.backend,
            linger_ms=args.batch_linger_ms, max_batch=args.batch_max,
            max_pending=max(64, args.concurrency * 4),
        )).start()
        host, port = "127.0.0.1", runner.port
        print(f"self-hosted service on {runner.url} (backend={args.backend})")

    failures: List[str] = []
    entries: List[dict] = []
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    base = {
        "timestamp": stamp,
        "target": args.url or "self-host",
        "backend": args.backend if not args.url else "server-side",
    }
    setup = Client(host, port)
    try:
        if args.compare_batching:
            database = register_workload(setup, "hard", args.hard_size)
            print(f"batched vs per-request dispatch "
                  f"({args.compare_requests} requests, "
                  f"concurrency {args.compare_concurrency}, "
                  f"{args.hard_size}-tuple zipf):")
            comparison = compare_batching(
                host, port, database,
                total_requests=args.compare_requests,
                concurrency=args.compare_concurrency,
            )
            entries.append({**base, "kind": "compare_batching",
                            "hard_size": args.hard_size, **comparison})
            if (args.assert_speedup is not None
                    and comparison["speedup"] < args.assert_speedup):
                failures.append(
                    f"batched speedup {comparison['speedup']:.2f}x "
                    f"< required {args.assert_speedup:g}x"
                )
            if comparison["per_request"]["errors"] or comparison["batched"]["errors"]:
                failures.append("comparison runs saw request errors")
        elif args.compare_mutations:
            database = register_workload(setup, "hard", args.hard_size)
            print(f"incremental insertions vs fresh re-evaluation "
                  f"({args.mutation_rounds} rounds x {args.mutation_batch} "
                  f"tuples, {args.hard_size}-tuple zipf, "
                  f"seed {args.mutation_seed}):")
            comparison = compare_mutations(
                host, port, database,
                size=args.hard_size,
                rounds=args.mutation_rounds,
                batch_size=args.mutation_batch,
                seed=args.mutation_seed,
            )
            entries.append({**base, "kind": "compare_mutations",
                            "hard_size": args.hard_size, **comparison})
            if (args.assert_speedup is not None
                    and comparison["speedup"] < args.assert_speedup):
                failures.append(
                    f"incremental speedup {comparison['speedup']:.2f}x "
                    f"< required {args.assert_speedup:g}x"
                )
        else:
            size = args.hard_size if args.mix == "hard" else args.easy_size
            database = register_workload(setup, args.mix, size)
            factory = request_factory(args.mix, database)
            if args.mode in ("closed", "both"):
                stats = closed_loop(
                    host, port, factory,
                    concurrency=args.concurrency, duration_s=args.duration,
                )
                print(f"closed loop [{args.mix}]: {stats['throughput_rps']} req/s, "
                      f"p50 {stats['latency_ms']['p50']} ms, "
                      f"p99 {stats['latency_ms']['p99']} ms, "
                      f"errors {stats['errors']}")
                entries.append({**base, "kind": "load", "mix": args.mix,
                                "size": size, **stats})
                if stats["errors"]:
                    failures.append(f"closed loop saw {stats['errors']} errors")
                if (args.assert_throughput is not None
                        and stats["throughput_rps"] < args.assert_throughput):
                    failures.append(
                        f"closed-loop throughput {stats['throughput_rps']} req/s "
                        f"< required {args.assert_throughput:g}"
                    )
            if args.mode in ("open", "both"):
                stats = open_loop(
                    host, port, factory,
                    rate_rps=args.rate, duration_s=args.duration,
                    max_workers=max(8, args.concurrency * 2),
                )
                print(f"open loop [{args.mix}] @ {args.rate:g} req/s offered: "
                      f"served {stats['throughput_rps']} req/s, "
                      f"p50 {stats['latency_ms']['p50']} ms, "
                      f"p99 {stats['latency_ms']['p99']} ms, "
                      f"rejected {stats['rejected']}")
                entries.append({**base, "kind": "load", "mix": args.mix,
                                "size": size, **stats})
                if stats["errors"]:
                    failures.append(f"open loop saw {stats['errors']} errors")
        metrics = scrape_health(host, port)
        if metrics:
            print(f"service metrics: {json.dumps(metrics, sort_keys=True)}")
            entries[-1]["service_metrics"] = metrics
    finally:
        setup.close()
        if runner is not None:
            runner.close()
            import multiprocessing

            leaked = multiprocessing.active_children()
            if leaked:
                failures.append(f"leaked worker processes: {leaked!r}")

    if args.record:
        record_runs(Path(args.record), entries)
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    print("service load run ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
