#!/usr/bin/env python
"""Load harness for the ADP query service (closed + open loop).

Drives ``repro serve`` (an external ``--url``, or a self-hosted in-process
service) with the stdlib ``http.client`` over persistent keep-alive
connections and records throughput and latency percentiles to the
committed trajectory file ``benchmarks/BENCH_service.json``.

Workload mixes (registered over ``POST /v1/databases``):

* ``easy`` -- the singleton query ``Q6(A, B) :- R1(A), R2(A, B)`` on a
  2k-tuple Zipf instance: cheap poly-time solves, the request-rate mix
  (CI asserts >= 200 req/s on it);
* ``hard`` -- the NP-hard projection ``Qh(A) :- R1(A), R2(A, B), R3(B)``
  on a 60k-tuple Zipf instance: greedy-curve-dominated solves, the mix
  where micro-batching pays.

``--compare-batching`` measures the same fixed hard-mix request set twice
-- once with per-request dispatch (``"batch": false``) and once through
the micro-batcher -- and asserts the batched throughput multiple
(``--assert-speedup 2`` in CI: coalescing shares one evaluation and one
cost curve per batch, per-request dispatch recomputes the curve every
time).

``--compare-mutations`` interleaves ``POST /v1/apply_insertions`` batches
with solves on the hard mix and compares the incremental leg (delta join
+ in-place cache migration) against re-registering the identical grown
database and solving cold (``--assert-speedup 5`` in CI: the delta join
touches only new witnesses, the fresh leg re-joins everything).

``--compare-restart`` runs the kill-and-restart recovery scenario: a
``repro serve --data-dir`` subprocess registers the hard mix, solves,
absorbs write-through mutation batches and is SIGKILLed mid-flight.  The
durable leg restarts on the same data dir and measures
ready-to-first-successful-solve (lazy snapshot+log rehydration, warm
provenance cache); the fresh leg restarts with no data dir and measures
the pre-durability client path: CSV reload + re-registration + cold
evaluate (``--assert-speedup 10`` in CI).

The client retries 429/503 responses with capped exponential backoff +
jitter, honoring ``Retry-After``; retries are reported separately from
successes and hard errors in every run summary.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --mix easy --mode both
    PYTHONPATH=src python benchmarks/bench_service.py --url http://127.0.0.1:8080 \
        --mix easy --duration 10 --assert-throughput 200 --record
    PYTHONPATH=src python benchmarks/bench_service.py --compare-batching \
        --assert-speedup 2 --record
    PYTHONPATH=src python benchmarks/bench_service.py --compare-mutations \
        --assert-speedup 5 --record
    PYTHONPATH=src python benchmarks/bench_service.py --compare-restart \
        --assert-speedup 10 --record
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, List, Optional, Tuple

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_service.json"

HARD_QUERY = "Qh(A) :- R1(A), R2(A, B), R3(B)"
EASY_QUERY = "Q6(A, B) :- R1(A), R2(A, B)"
HARD_SIZE = 60_000
EASY_SIZE = 2_000


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
#: Statuses the service uses for transient pushback: 429 (admission
#: control) and 503 (degraded durable storage).  Both carry Retry-After.
RETRYABLE_STATUSES = (429, 503)


class Client:
    """One persistent keep-alive connection (one per worker thread).

    With ``max_attempts > 1`` the client absorbs transient 429/503
    pushback instead of surfacing it: it honors the server's
    ``Retry-After`` hint, backing off at least that long (otherwise a
    capped exponential with jitter), and counts every retry in
    ``self.retries`` so harness summaries report retries separately from
    successes and hard errors.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0, *,
                 max_attempts: int = 1, backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0, seed: int = 0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.retries = 0
        self._rng = random.Random(seed)
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def _roundtrip(self, path: str, body: str):
        try:
            self.conn.request("POST", path, body)
            response = self.conn.getresponse()
        except (http.client.HTTPException, OSError):
            # Keep-alive connection went stale: reconnect once.
            self.conn.close()
            self.conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.conn.request("POST", path, body)
            response = self.conn.getresponse()
        return response.status, json.loads(response.read()), response.headers

    def post(self, path: str, payload: dict) -> Tuple[int, dict]:
        body = json.dumps(payload)
        attempt = 0
        while True:
            status, parsed, headers = self._roundtrip(path, body)
            if (status not in RETRYABLE_STATUSES
                    or attempt + 1 >= self.max_attempts):
                return status, parsed
            # Capped exponential with jitter in [0.5x, 1.5x); never less
            # than the server's own Retry-After hint.
            delay = min(self.backoff_cap_s,
                        self.backoff_base_s * (2 ** attempt))
            delay *= 0.5 + self._rng.random()
            retry_after = headers.get("Retry-After")
            if retry_after:
                try:
                    delay = max(delay, float(retry_after))
                except ValueError:
                    pass
            self.retries += 1
            attempt += 1
            time.sleep(delay)

    def get(self, path: str) -> Tuple[int, bytes]:
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        return response.status, response.read()

    def close(self) -> None:
        self.conn.close()


def parse_url(url: str) -> Tuple[str, int]:
    stripped = url.split("//", 1)[-1].rstrip("/")
    host, _sep, port = stripped.partition(":")
    return host, int(port or 80)


# --------------------------------------------------------------------------- #
# Workload registration and request factories
# --------------------------------------------------------------------------- #
def register_workload(client: Client, mix: str, size: int) -> str:
    from repro.service.serialize import database_to_wire
    from repro.workloads.zipf import generate_zipf_path

    name = f"zipf_{mix}_{size}"
    if mix == "hard":
        database = generate_zipf_path(r2_tuples=size, alpha=1.1, seed=13)
    else:
        database = generate_zipf_path(r2_tuples=size, alpha=0.5, seed=7)
    status, body = client.post(
        "/v1/databases",
        {"name": name, "replace": True, **database_to_wire(database)},
    )
    if status != 200:
        raise SystemExit(f"registering {name} failed: {status} {body}")
    print(f"registered {name}: {body['total_tuples']} tuples")
    return name


def request_factory(mix: str, database: str) -> Callable[[int], dict]:
    if mix == "hard":
        # Targets vary per request, so batched dispatch must genuinely read
        # different k off one shared curve (not serve one memoized answer).
        return lambda i: {
            "database": database,
            "query": HARD_QUERY,
            "k": 150 + (i % 8) * 10,
            "method": "greedy",
        }
    return lambda i: {
        "database": database,
        "query": EASY_QUERY,
        "k": 1 + (i % 5),
    }


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
#: Attempts per request inside the load loops: the first try plus three
#: backed-off retries before a 429/503 is surfaced as rejected.
LOAD_MAX_ATTEMPTS = 4


def summarize(latencies_ms: List[float], wall_s: float, errors: int,
              rejected: int, retries: int = 0) -> dict:
    latencies = sorted(latencies_ms)

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(round(p / 100.0 * (len(latencies) - 1))))
        return round(latencies[index], 3)

    return {
        "requests": len(latencies),
        "errors": errors,
        "rejected": rejected,
        "retries": retries,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "mean": round(statistics.fmean(latencies), 3) if latencies else 0.0,
            "p50": pct(50), "p90": pct(90), "p99": pct(99),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
    }


def closed_loop(
    host: str,
    port: int,
    factory: Callable[[int], dict],
    *,
    concurrency: int,
    duration_s: Optional[float] = None,
    total_requests: Optional[int] = None,
    batch: bool = True,
) -> dict:
    """N workers, each issuing its next request as soon as the last returns."""
    assert (duration_s is None) != (total_requests is None)
    latencies: List[float] = []
    errors = [0]
    rejected = [0]
    retries = [0]
    lock = threading.Lock()
    counter = [0]
    stop = threading.Event()

    def next_index() -> Optional[int]:
        with lock:
            if total_requests is not None and counter[0] >= total_requests:
                return None
            counter[0] += 1
            return counter[0] - 1

    def worker(worker_index: int) -> None:
        client = Client(host, port, max_attempts=LOAD_MAX_ATTEMPTS,
                        seed=worker_index)
        try:
            while not stop.is_set():
                index = next_index()
                if index is None:
                    return
                payload = dict(factory(index))
                payload["batch"] = batch
                started = time.perf_counter()
                status, _body = client.post("/v1/solve", payload)
                elapsed = (time.perf_counter() - started) * 1000.0
                with lock:
                    if status == 200:
                        latencies.append(elapsed)
                    elif status in RETRYABLE_STATUSES:
                        rejected[0] += 1
                    else:
                        errors[0] += 1
        finally:
            with lock:
                retries[0] += client.retries
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    if duration_s is not None:
        time.sleep(duration_s)
        stop.set()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    stats = summarize(latencies, wall, errors[0], rejected[0], retries[0])
    stats.update({"mode": "closed", "concurrency": concurrency, "batch": batch})
    return stats


def open_loop(
    host: str,
    port: int,
    factory: Callable[[int], dict],
    *,
    rate_rps: float,
    duration_s: float,
    max_workers: int = 32,
) -> dict:
    """Fixed arrival rate; latency includes queueing (the serving view)."""
    latencies: List[float] = []
    errors = [0]
    rejected = [0]
    retries = [0]
    lock = threading.Lock()
    interval = 1.0 / rate_rps
    total = int(rate_rps * duration_s)
    dispatch_times = [i * interval for i in range(total)]
    cursor = [0]
    start = time.perf_counter()

    def worker(worker_index: int) -> None:
        client = Client(host, port, max_attempts=LOAD_MAX_ATTEMPTS,
                        seed=worker_index)
        try:
            while True:
                with lock:
                    if cursor[0] >= total:
                        return
                    index = cursor[0]
                    cursor[0] += 1
                target = start + dispatch_times[index]
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                status, _body = client.post("/v1/solve", factory(index))
                elapsed = (time.perf_counter() - target) * 1000.0
                with lock:
                    if status == 200:
                        latencies.append(elapsed)
                    elif status in RETRYABLE_STATUSES:
                        rejected[0] += 1
                    else:
                        errors[0] += 1
        finally:
            with lock:
                retries[0] += client.retries
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(max_workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    stats = summarize(latencies, wall, errors[0], rejected[0], retries[0])
    stats.update({"mode": "open", "offered_rps": rate_rps})
    return stats


# --------------------------------------------------------------------------- #
# Batched vs per-request comparison (the >= 2x acceptance run)
# --------------------------------------------------------------------------- #
def compare_batching(host: str, port: int, database: str, *,
                     total_requests: int, concurrency: int) -> dict:
    factory = request_factory("hard", database)
    warm = Client(host, port)
    try:
        # Warm the session's evaluation cache so both runs measure dispatch
        # strategy, not the shared first join.
        status, body = warm.post("/v1/solve", {**factory(0), "batch": False})
        if status != 200:
            raise SystemExit(f"warm-up solve failed: {status} {body}")
    finally:
        warm.close()
    per_request = closed_loop(
        host, port, factory,
        concurrency=concurrency, total_requests=total_requests, batch=False,
    )
    print(f"  per-request dispatch: {per_request['throughput_rps']} req/s "
          f"(p50 {per_request['latency_ms']['p50']} ms)")
    batched = closed_loop(
        host, port, factory,
        concurrency=concurrency, total_requests=total_requests, batch=True,
    )
    print(f"  batched dispatch:     {batched['throughput_rps']} req/s "
          f"(p50 {batched['latency_ms']['p50']} ms)")
    speedup = (
        batched["throughput_rps"] / per_request["throughput_rps"]
        if per_request["throughput_rps"]
        else 0.0
    )
    print(f"  batched/per-request speedup: {speedup:.2f}x")
    return {
        "per_request": per_request,
        "batched": batched,
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Incremental insertion vs fresh re-evaluation (the >= 5x acceptance run)
# --------------------------------------------------------------------------- #
def mutation_batches(database, rounds: int, batch_size: int, seed: int):
    """Deterministic fresh R2 edges recombined from the stored endpoints.

    Recombination keeps the inserts inside the join's value domain, so a
    healthy fraction produce new witnesses -- the expensive case for a
    from-scratch rebuild and the interesting one for the delta join.
    """
    from repro.data.relation import TupleRef

    rng = random.Random(seed)
    rows = sorted(database.relation("R2").rows)
    stored = set(rows)
    batches = []
    for _ in range(rounds):
        batch = []
        attempts = 0
        while len(batch) < batch_size and attempts < batch_size * 50:
            attempts += 1
            edge = (rng.choice(rows)[0], rng.choice(rows)[1])
            if edge in stored:
                continue
            stored.add(edge)
            batch.append(TupleRef("R2", edge))
        batches.append(batch)
    return batches


def compare_mutations(host: str, port: int, database: str, *,
                      size: int, rounds: int, batch_size: int,
                      seed: int) -> dict:
    """Mixed-mutation scenario: apply insert batches, then solve.

    The incremental leg POSTs ``/v1/apply_insertions`` (delta join +
    in-place cache migration) and re-reads through a what-if probe on the
    migrated entry (a cache hit: only the probe itself runs).  The fresh
    leg re-registers the identical cumulative database under a scratch
    name (untimed -- generous to the baseline) and probes cold, which
    re-runs the full join.  Both probes answer over the same data, so the
    speedup isolates evaluation strategy.
    """
    from repro.data.relation import TupleRef
    from repro.service.serialize import database_to_wire, refs_to_json
    from repro.workloads.zipf import generate_zipf_path

    local = generate_zipf_path(r2_tuples=size, alpha=1.1, seed=13)
    # One extra batch: an untimed warm-up mutation so one-time lazy costs
    # (probe hash groups, postings) land outside the measured rounds and
    # both legs are compared in steady state.
    warm_up, *batches = mutation_batches(local, rounds + 1, batch_size, seed)
    # A fixed stored edge (never mutated) keeps the probe identical across
    # rounds and legs.
    probe = refs_to_json([TupleRef("R2", sorted(local.relation("R2").rows)[0])])
    what_if = {"database": database, "query": HARD_QUERY, "refs": probe}
    fresh_name = f"{database}_fresh"
    client = Client(host, port)
    incremental_ms: List[float] = []
    fresh_ms: List[float] = []
    try:
        # Warm the incremental session: the deltas migrate this entry.
        status, body = client.post("/v1/what_if", what_if)
        if status != 200:
            raise SystemExit(f"warm-up what-if failed: {status} {body}")
        status, body = client.post(
            "/v1/apply_insertions",
            {"database": database, "refs": refs_to_json(warm_up)},
        )
        if status != 200:
            raise SystemExit(f"warm-up insertions failed: {status} {body}")
        local.insert_tuples(warm_up)
        status, body = client.post("/v1/what_if", what_if)
        if status != 200:
            raise SystemExit(f"warm-up what-if failed: {status} {body}")

        # Phase 1 -- incremental: apply each batch, re-read through the
        # migrated entry.  All rounds run back to back so the fresh leg's
        # session churn (84k-tuple re-registrations and evictions) cannot
        # bleed GC pauses into these timings.
        incremental_reads = []
        for batch in batches:
            started = time.perf_counter()
            status, applied = client.post(
                "/v1/apply_insertions",
                {"database": database, "refs": refs_to_json(batch)},
            )
            if status != 200 or applied["added"] != len(batch):
                raise SystemExit(
                    f"apply_insertions failed: {status} {applied}")
            status, incremental = client.post("/v1/what_if", what_if)
            if status != 200:
                raise SystemExit(f"incremental what-if failed: {status}")
            incremental_ms.append((time.perf_counter() - started) * 1000.0)
            incremental_reads.append(incremental)

        # Phase 2 -- fresh: replay the same cumulative states cold.  The
        # re-registration itself is untimed (generous to the baseline);
        # only the evaluation-bearing probe is measured.
        for index, batch in enumerate(batches, 1):
            local.insert_tuples(batch)
            status, body = client.post(
                "/v1/databases",
                {"name": fresh_name, "replace": True,
                 **database_to_wire(local)},
            )
            if status != 200:
                raise SystemExit(f"re-registering failed: {status} {body}")
            started = time.perf_counter()
            status, fresh = client.post(
                "/v1/what_if", {**what_if, "database": fresh_name})
            if status != 200:
                raise SystemExit(f"fresh what-if failed: {status}")
            fresh_ms.append((time.perf_counter() - started) * 1000.0)
            incremental = incremental_reads[index - 1]
            for field in ("outputs_removed", "witnesses_removed",
                          "output_size_before", "witness_count_before"):
                if incremental[field] != fresh[field]:
                    raise SystemExit(
                        f"round {index}: incremental/fresh diverge on "
                        f"{field}: {incremental[field]} vs {fresh[field]}")
            print(f"  round {index}: +{len(batch)} tuples  "
                  f"incremental {incremental_ms[index - 1]:.1f} ms  "
                  f"fresh {fresh_ms[-1]:.1f} ms")
    finally:
        client.close()
    incremental_s = sum(incremental_ms) / 1000.0
    fresh_s = sum(fresh_ms) / 1000.0
    speedup = fresh_s / incremental_s if incremental_s else 0.0
    print(f"  incremental total {incremental_s:.2f} s, "
          f"fresh total {fresh_s:.2f} s, speedup {speedup:.2f}x")
    return {
        "rounds": rounds,
        "batch_size": batch_size,
        "seed": seed,
        "incremental": {
            "total_s": round(incremental_s, 3),
            "per_round_ms": [round(v, 2) for v in incremental_ms],
        },
        "fresh": {
            "total_s": round(fresh_s, 3),
            "per_round_ms": [round(v, 2) for v in fresh_ms],
        },
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Kill-and-restart recovery (the >= 10x acceptance run)
# --------------------------------------------------------------------------- #
def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_server(port: int, extra: List[str], log_path: Path):
    """Launch ``python -m repro serve`` bound to 127.0.0.1:port."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH", "")) if part
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", str(port), *extra,
    ]
    log = open(log_path, "ab")
    try:
        return subprocess.Popen(command, env=env, stdout=log, stderr=log)
    finally:
        log.close()


def _wait_ready(port: int, proc, log_path: Path,
                timeout_s: float = 120.0) -> float:
    """Poll /healthz until 200; returns the boot wait in seconds."""
    started = time.perf_counter()
    while time.perf_counter() - started < timeout_s:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited during boot (rc={proc.returncode}):\n"
                f"{log_path.read_text()[-2000:]}"
            )
        try:
            client = Client("127.0.0.1", port, timeout=5.0)
            try:
                status, _body = client.get("/healthz")
            finally:
                client.close()
            if status == 200:
                return time.perf_counter() - started
        except OSError:
            pass
        time.sleep(0.05)
    proc.kill()
    raise SystemExit(
        f"server on port {port} never became ready:\n"
        f"{log_path.read_text()[-2000:]}"
    )


def _kill_server(proc) -> None:
    """SIGKILL: no atexit, no flush -- the crash the recovery path is for."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait()


def compare_restart(*, size: int, rounds: int, batch_size: int,
                    seed: int) -> dict:
    """Kill ``repro serve --data-dir`` mid-flight; race the two restarts.

    Both legs measure ready-to-first-successful-solve *at the acknowledged
    version* -- the clock starts once /healthz answers (interpreter boot is
    identical in both legs) and stops at the first 200 solve that answers
    over the state clients were acknowledged before the kill.  The
    **durable** leg restarts on the surviving data dir: the first solve
    lazily rehydrates the database from the compacted snapshot plus a
    bounded log-suffix replay and rides the persisted provenance cache.
    The **fresh** leg restarts with no data dir and replays what clients
    had to do before durability: reload the CSV export of the *originally
    registered* database and replay the acknowledged request history over
    HTTP -- register, the initial solve, every acknowledged mutation batch
    (each one delta-maintained against the resident provenance, exactly as
    the live service did), and the final solve.  The CSV export and all
    batches are prepared before the kill, so neither leg's timed section
    includes workload generation.

    The probe is the poly-time query over the ``size``-tuple Zipf instance:
    an NP-hard probe would recompute its greedy cost curve identically in
    both legs (~0.4 s at 60k tuples) and only dilute the recovery delta
    being measured.
    """
    from repro.data.csvio import load_database_csv, save_database_csv
    from repro.service.serialize import database_to_wire, refs_to_json
    from repro.workloads.zipf import generate_zipf_path

    workdir = Path(tempfile.mkdtemp(prefix="bench_restart_"))
    data_dir = workdir / "data"
    csv_dir = workdir / "csv"
    log_path = workdir / "serve.log"
    local = generate_zipf_path(r2_tuples=size, alpha=1.1, seed=13)
    save_database_csv(local, csv_dir)  # the fresh leg's input (untimed)
    batches = mutation_batches(local, rounds, batch_size, seed)
    batch_wires = [refs_to_json(batch) for batch in batches]
    name = f"zipf_hard_{size}"
    solve = {"database": name, "query": EASY_QUERY, "k": 2, "batch": False}
    # Compact near the end of the mutation stream: the compaction snapshot
    # carries the evaluated provenance and absorbs the bulk of the log,
    # and the remaining records exercise log-suffix replay on restart.
    compact_after = max(2, rounds - 2)
    expected_version = 1 + rounds
    proc = None
    try:
        # --- Seed process: register, solve, write-through mutations, die.
        port = _free_port()
        proc = _spawn_server(
            port,
            ["--data-dir", str(data_dir), "--compact-after", str(compact_after)],
            log_path,
        )
        _wait_ready(port, proc, log_path)
        client = Client("127.0.0.1", port, max_attempts=5)
        status, body = client.post(
            "/v1/databases",
            {"name": name, "replace": True, **database_to_wire(local)},
        )
        if status != 200:
            raise SystemExit(f"registering {name} failed: {status} {body}")
        status, body = client.post("/v1/solve", solve)
        if status != 200:
            raise SystemExit(f"seed solve failed: {status} {body}")
        for wire in batch_wires:
            status, applied = client.post(
                "/v1/apply_insertions", {"database": name, "refs": wire}
            )
            if status != 200:
                raise SystemExit(f"apply_insertions failed: {status} {applied}")
        client.close()
        _kill_server(proc)
        print(f"  seeded {size}-tuple mix +{rounds}x{batch_size} write-through "
              f"mutations, SIGKILLed pid {proc.pid}")

        # --- Durable leg: same data dir, lazy rehydrate + warm solve.
        port = _free_port()
        proc = _spawn_server(port, ["--data-dir", str(data_dir)], log_path)
        durable_boot_s = _wait_ready(port, proc, log_path)
        client = Client("127.0.0.1", port, max_attempts=8, backoff_cap_s=1.0)
        started = time.perf_counter()
        status, durable = client.post("/v1/solve", solve)
        durable_s = time.perf_counter() - started
        if status != 200:
            raise SystemExit(f"durable-leg solve failed: {status} {durable}")
        if durable["version"] != expected_version:
            raise SystemExit(
                f"durable leg recovered version {durable['version']}, "
                f"expected {expected_version}: mutations were lost"
            )
        status, raw = client.get("/healthz")
        storage = json.loads(raw).get("storage", {}) if status == 200 else {}
        durable_retries = client.retries
        client.close()
        _kill_server(proc)
        print(f"  durable restart: first solve {durable_s * 1000.0:.1f} ms "
              f"(replayed {storage.get('replayed_records_total')} log "
              f"records over the recovered snapshot)")

        # --- Fresh leg: no data dir; CSV reload + replay of the
        # acknowledged request history (register, solve, batches, solve).
        port = _free_port()
        proc = _spawn_server(port, [], log_path)
        fresh_boot_s = _wait_ready(port, proc, log_path)
        client = Client("127.0.0.1", port, max_attempts=8, backoff_cap_s=1.0)
        started = time.perf_counter()
        reloaded = load_database_csv(csv_dir)
        status, body = client.post(
            "/v1/databases",
            {"name": name, "replace": True, **database_to_wire(reloaded)},
        )
        if status != 200:
            raise SystemExit(f"fresh re-registration failed: {status} {body}")
        status, body = client.post("/v1/solve", solve)
        if status != 200:
            raise SystemExit(f"fresh initial solve failed: {status} {body}")
        for wire in batch_wires:
            status, applied = client.post(
                "/v1/apply_insertions", {"database": name, "refs": wire}
            )
            if status != 200:
                raise SystemExit(f"fresh re-apply failed: {status} {applied}")
        status, fresh = client.post("/v1/solve", solve)
        fresh_s = time.perf_counter() - started
        if status != 200:
            raise SystemExit(f"fresh-leg solve failed: {status} {fresh}")
        if fresh["version"] != expected_version:
            raise SystemExit(
                f"fresh leg replayed to version {fresh['version']}, "
                f"expected {expected_version}"
            )
        fresh_retries = client.retries
        client.close()
        print(f"  fresh restart:   first solve {fresh_s * 1000.0:.1f} ms "
              f"(CSV reload + re-registration + {rounds} re-applied "
              f"batches + cold evaluate)")
        # Same acknowledged state, same answer: recovery changed nothing
        # but the clock.
        for field in ("output_size", "removed_outputs"):
            if field in durable and field in fresh:
                if durable[field] != fresh[field]:
                    raise SystemExit(
                        f"durable/fresh diverge on {field}: "
                        f"{durable[field]} vs {fresh[field]}"
                    )
    finally:
        if proc is not None:
            _kill_server(proc)
        shutil.rmtree(workdir, ignore_errors=True)
    speedup = fresh_s / durable_s if durable_s else 0.0
    print(f"  restart-to-first-solve speedup: {speedup:.2f}x")
    return {
        "rounds": rounds,
        "batch_size": batch_size,
        "seed": seed,
        "compact_after": compact_after,
        "recovered_version": expected_version,
        "durable": {
            "boot_s": round(durable_boot_s, 3),
            "first_solve_s": round(durable_s, 4),
            "retries": durable_retries,
            "replayed_records": storage.get("replayed_records_total"),
            "rehydrations": storage.get("rehydrations_total"),
        },
        "fresh": {
            "boot_s": round(fresh_boot_s, 3),
            "first_solve_s": round(fresh_s, 4),
            "retries": fresh_retries,
        },
        "speedup": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------------- #
def record_runs(path: Path, entries: List[dict]) -> None:
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from _trajectory import load_trajectory

    trajectory = load_trajectory(path, {
        "description": "ADP service load-harness trajectory "
        "(benchmarks/bench_service.py)",
        "runs": [],
    })
    trajectory["runs"].extend(entries)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"recorded {len(entries)} run(s) to {path} "
          f"({len(trajectory['runs'])} total)")


def scrape_health(host: str, port: int) -> dict:
    client = Client(host, port)
    try:
        status, body = client.get("/healthz")
        return json.loads(body).get("metrics", {}) if status == 200 else {}
    finally:
        client.close()


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--url", help="target service (default: self-host)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "python", "numpy"],
                        help="backend for the self-hosted service")
    parser.add_argument("--mix", default="easy", choices=["easy", "hard"])
    parser.add_argument("--mode", default="closed",
                        choices=["closed", "open", "both"])
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds per load run")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="open-loop offered load (req/s)")
    parser.add_argument("--hard-size", type=int, default=HARD_SIZE,
                        help="R2 tuples of the hard-mix Zipf instance")
    parser.add_argument("--easy-size", type=int, default=EASY_SIZE)
    parser.add_argument("--batch-linger-ms", type=float, default=5.0,
                        help="self-hosted service batch window")
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--compare-batching", action="store_true",
                        help="run the batched-vs-per-request hard-mix "
                        "comparison instead of a load run")
    parser.add_argument("--compare-requests", type=int, default=12)
    parser.add_argument("--compare-concurrency", type=int, default=6)
    parser.add_argument("--compare-mutations", action="store_true",
                        help="run the incremental-insert vs fresh "
                        "re-evaluation hard-mix comparison")
    parser.add_argument("--compare-restart", action="store_true",
                        help="run the kill-and-restart recovery comparison "
                        "(spawns its own repro serve subprocesses)")
    parser.add_argument("--mutation-rounds", type=int, default=5)
    parser.add_argument("--mutation-batch", type=int, default=500,
                        help="tuples inserted per mutation round")
    parser.add_argument("--mutation-seed", type=int,
                        default=int(os.environ.get("REPRO_TEST_SEED", 101)),
                        help="batch-generation seed (default: "
                        "REPRO_TEST_SEED or 101)")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        help="fail unless the comparison speedup >= this")
    parser.add_argument("--assert-throughput", type=float, default=None,
                        help="fail unless closed-loop req/s >= this")
    parser.add_argument("--record", nargs="?", const=str(RECORD_PATH),
                        default=None, metavar="PATH",
                        help=f"append results to PATH "
                        f"(default: {RECORD_PATH.name})")
    args = parser.parse_args(argv)

    if args.compare_restart:
        if args.url:
            parser.error("--compare-restart manages its own server "
                         "subprocesses and cannot target --url")
        stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
        print(f"kill-and-restart recovery ({args.hard_size}-tuple zipf, "
              f"{args.mutation_rounds} x {args.mutation_batch} write-through "
              f"mutations, seed {args.mutation_seed}):")
        comparison = compare_restart(
            size=args.hard_size,
            rounds=args.mutation_rounds,
            batch_size=args.mutation_batch,
            seed=args.mutation_seed,
        )
        entry = {"timestamp": stamp, "target": "subprocess",
                 "backend": "server-side", "kind": "compare_restart",
                 "hard_size": args.hard_size, **comparison}
        if args.record:
            record_runs(Path(args.record), [entry])
        if (args.assert_speedup is not None
                and comparison["speedup"] < args.assert_speedup):
            print(f"FAILED: restart speedup {comparison['speedup']:.2f}x "
                  f"< required {args.assert_speedup:g}x")
            return 1
        print("service load run ok")
        return 0

    runner = None
    if args.url:
        host, port = parse_url(args.url)
    else:
        from repro.service.http import ServiceConfig, ServiceRunner

        runner = ServiceRunner(ServiceConfig(
            port=0, backend=args.backend,
            linger_ms=args.batch_linger_ms, max_batch=args.batch_max,
            max_pending=max(64, args.concurrency * 4),
        )).start()
        host, port = "127.0.0.1", runner.port
        print(f"self-hosted service on {runner.url} (backend={args.backend})")

    failures: List[str] = []
    entries: List[dict] = []
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    base = {
        "timestamp": stamp,
        "target": args.url or "self-host",
        "backend": args.backend if not args.url else "server-side",
    }
    setup = Client(host, port)
    try:
        if args.compare_batching:
            database = register_workload(setup, "hard", args.hard_size)
            print(f"batched vs per-request dispatch "
                  f"({args.compare_requests} requests, "
                  f"concurrency {args.compare_concurrency}, "
                  f"{args.hard_size}-tuple zipf):")
            comparison = compare_batching(
                host, port, database,
                total_requests=args.compare_requests,
                concurrency=args.compare_concurrency,
            )
            entries.append({**base, "kind": "compare_batching",
                            "hard_size": args.hard_size, **comparison})
            if (args.assert_speedup is not None
                    and comparison["speedup"] < args.assert_speedup):
                failures.append(
                    f"batched speedup {comparison['speedup']:.2f}x "
                    f"< required {args.assert_speedup:g}x"
                )
            if comparison["per_request"]["errors"] or comparison["batched"]["errors"]:
                failures.append("comparison runs saw request errors")
        elif args.compare_mutations:
            database = register_workload(setup, "hard", args.hard_size)
            print(f"incremental insertions vs fresh re-evaluation "
                  f"({args.mutation_rounds} rounds x {args.mutation_batch} "
                  f"tuples, {args.hard_size}-tuple zipf, "
                  f"seed {args.mutation_seed}):")
            comparison = compare_mutations(
                host, port, database,
                size=args.hard_size,
                rounds=args.mutation_rounds,
                batch_size=args.mutation_batch,
                seed=args.mutation_seed,
            )
            entries.append({**base, "kind": "compare_mutations",
                            "hard_size": args.hard_size, **comparison})
            if (args.assert_speedup is not None
                    and comparison["speedup"] < args.assert_speedup):
                failures.append(
                    f"incremental speedup {comparison['speedup']:.2f}x "
                    f"< required {args.assert_speedup:g}x"
                )
        else:
            size = args.hard_size if args.mix == "hard" else args.easy_size
            database = register_workload(setup, args.mix, size)
            factory = request_factory(args.mix, database)
            if args.mode in ("closed", "both"):
                stats = closed_loop(
                    host, port, factory,
                    concurrency=args.concurrency, duration_s=args.duration,
                )
                print(f"closed loop [{args.mix}]: {stats['throughput_rps']} req/s, "
                      f"p50 {stats['latency_ms']['p50']} ms, "
                      f"p99 {stats['latency_ms']['p99']} ms, "
                      f"errors {stats['errors']}")
                entries.append({**base, "kind": "load", "mix": args.mix,
                                "size": size, **stats})
                if stats["errors"]:
                    failures.append(f"closed loop saw {stats['errors']} errors")
                if (args.assert_throughput is not None
                        and stats["throughput_rps"] < args.assert_throughput):
                    failures.append(
                        f"closed-loop throughput {stats['throughput_rps']} req/s "
                        f"< required {args.assert_throughput:g}"
                    )
            if args.mode in ("open", "both"):
                stats = open_loop(
                    host, port, factory,
                    rate_rps=args.rate, duration_s=args.duration,
                    max_workers=max(8, args.concurrency * 2),
                )
                print(f"open loop [{args.mix}] @ {args.rate:g} req/s offered: "
                      f"served {stats['throughput_rps']} req/s, "
                      f"p50 {stats['latency_ms']['p50']} ms, "
                      f"p99 {stats['latency_ms']['p99']} ms, "
                      f"rejected {stats['rejected']}")
                entries.append({**base, "kind": "load", "mix": args.mix,
                                "size": size, **stats})
                if stats["errors"]:
                    failures.append(f"open loop saw {stats['errors']} errors")
        metrics = scrape_health(host, port)
        if metrics:
            print(f"service metrics: {json.dumps(metrics, sort_keys=True)}")
            entries[-1]["service_metrics"] = metrics
    finally:
        setup.close()
        if runner is not None:
            runner.close()
            import multiprocessing

            leaked = multiprocessing.active_children()
            if leaked:
                failures.append(f"leaked worker processes: {leaked!r}")

    if args.record:
        record_runs(Path(args.record), entries)
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    print("service load run ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
