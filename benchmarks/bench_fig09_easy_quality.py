"""Figure 9: solution quality on σθQ1 (Exact vs Greedy vs Drastic).

Paper's claim: on this workload the three methods find solutions of the same
size (the heuristics happen to be optimal here); in general the heuristics
can only be worse than Exact.
"""

import pytest

from benchmarks.conftest import RATIOS
from repro.core.adp import ADPSolver
from repro.core.selection import solve_with_selection
from repro.workloads.queries import Q1


@pytest.mark.parametrize("ratio", RATIOS)
def test_fig09_selected_q1_quality(benchmark, tpch_selected, ratio):
    prepared = tpch_selected[min(tpch_selected)]
    k = max(1, int(ratio * prepared["selected_output"]))

    def run_all_methods():
        exact = solve_with_selection(
            Q1, prepared["selection"], prepared["database"], k, solver=ADPSolver()
        )
        greedy = ADPSolver(heuristic="greedy").solve(Q1, prepared["filtered"], k)
        drastic = ADPSolver(heuristic="drastic").solve(Q1, prepared["filtered"], k)
        return exact, greedy, drastic

    exact, greedy, drastic = benchmark(run_all_methods)
    benchmark.extra_info.update(
        {
            "figure": "9",
            "ratio": ratio,
            "k": k,
            "exact_size": exact.size,
            "greedy_size": greedy.size,
            "drastic_size": drastic.size,
        }
    )
    # Exact is optimal; heuristics can only match or exceed it.
    assert exact.size <= greedy.size
    assert exact.size <= drastic.size
