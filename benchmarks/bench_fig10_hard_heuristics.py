"""Figure 10: running time of Greedy vs Drastic on the NP-hard Q1.

Paper's claim: Drastic computes tuple profits once per relation and is
therefore faster than Greedy (which recomputes profits after every removal),
with the gap growing with ρ and the input size.
"""

import pytest

from benchmarks.conftest import RATIOS, TPCH_SIZES, solve_once
from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q1


@pytest.mark.parametrize("size", TPCH_SIZES)
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("method", ["greedy", "drastic"])
def test_fig10_q1_heuristics(benchmark, tpch_instances, size, ratio, method):
    database = tpch_instances[size]
    total = evaluate(Q1, database).output_count()
    k = max(1, int(ratio * total))
    solver = ADPSolver(heuristic=method)

    solution = solve_once(
        benchmark, solver, Q1, database, k,
        figure="10", method=method, ratio=ratio, input_size=database.total_tuples(),
    )
    assert solution.removed_outputs >= k
    assert not solution.optimal
