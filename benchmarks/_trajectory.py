"""Shared trajectory-file loading for the benchmark scripts.

Both ``check_regression.py --record`` and ``bench_service.py --record``
append runs to a committed JSON trajectory.  A CI runner must never fail
a build because a cached/restored trajectory file got truncated, so both
load through this helper: missing, unreadable or structurally malformed
files are recreated fresh (losing history beats crashing the guard).
"""

from __future__ import annotations

import json
from pathlib import Path


def load_trajectory(path: Path, fresh: dict) -> dict:
    """The trajectory at ``path``, or a copy of ``fresh`` when unusable.

    ``fresh`` must contain a ``"runs"`` list; a loaded file qualifies only
    when it is a dict whose ``"runs"`` is a list.
    """
    if not path.exists():
        return dict(fresh)
    try:
        trajectory = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        print(f"warning: unreadable trajectory {path} ({exc}); recreating")
        return dict(fresh)
    if not isinstance(trajectory, dict) or not isinstance(
        trajectory.get("runs"), list
    ):
        print(f"warning: malformed trajectory {path}; recreating")
        return dict(fresh)
    return trajectory


__all__ = ["load_trajectory"]
