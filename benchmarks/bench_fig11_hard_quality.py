"""Figure 11: solution quality of Greedy vs Drastic on the NP-hard Q1.

Paper's claim: on this data distribution the two heuristics remove (almost)
the same number of input tuples; quality grows with ρ.
"""

import pytest

from benchmarks.conftest import RATIOS
from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q1


@pytest.mark.parametrize("ratio", RATIOS)
def test_fig11_q1_quality(benchmark, tpch_instances, ratio):
    database = tpch_instances[min(tpch_instances)]
    total = evaluate(Q1, database).output_count()
    k = max(1, int(ratio * total))

    def run_both():
        greedy = ADPSolver(heuristic="greedy").solve(Q1, database, k)
        drastic = ADPSolver(heuristic="drastic").solve(Q1, database, k)
        return greedy, drastic

    greedy, drastic = benchmark(run_both)
    benchmark.extra_info.update(
        {
            "figure": "11",
            "ratio": ratio,
            "k": k,
            "greedy_size": greedy.size,
            "drastic_size": drastic.size,
        }
    )
    assert greedy.removed_outputs >= k
    assert drastic.removed_outputs >= k
    # The two heuristics land in the same ballpark on this distribution.
    assert drastic.size <= 3 * max(1, greedy.size)
    assert greedy.size <= 3 * max(1, drastic.size)
