"""Figure 28: universal-attribute strategies on Q7.

Paper's claim: removing the universal attributes one by one is the slowest,
removing them as one combined attribute is faster, and the Singleton
algorithm (a single sort) is the fastest -- all three return the same
(optimal) objective.
"""

import pytest

from repro.core.adp import ADPSolver
from repro.core.universe import UniverseStrategy
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q7
from repro.workloads.synthetic import generate_q7_instance

RATIO = 0.5

STRATEGIES = {
    "one-by-one": dict(use_singleton=False, universe_strategy=UniverseStrategy.ONE_BY_ONE),
    "combined": dict(use_singleton=False, universe_strategy=UniverseStrategy.COMBINED),
    "singleton": dict(use_singleton=True),
}


@pytest.fixture(scope="module")
def q7_instance():
    database = generate_q7_instance(tuples_per_relation=60, domain=25, seed=28)
    total = evaluate(Q7, database).output_count()
    return database, max(1, int(RATIO * total))


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_fig28_universal_attribute_strategies(benchmark, q7_instance, strategy):
    database, k = q7_instance
    solver = ADPSolver(**STRATEGIES[strategy])

    solution = benchmark(lambda: solver.solve_in_context(Q7, database, k))
    benchmark.extra_info.update(
        {"figure": "28", "strategy": strategy, "k": k, "solution_size": solution.size}
    )
    assert solution.optimal


def test_fig28_strategies_agree_on_objective(q7_instance):
    database, k = q7_instance
    sizes = {
        name: ADPSolver(**options).solve(Q7, database, k).size
        for name, options in STRATEGIES.items()
    }
    assert len(set(sizes.values())) == 1, sizes
