"""Figure 14: running time of the heuristics on the ego-network queries Q2..Q5.

Paper's claim: Drastic (where applicable, i.e. on the full CQs Q2 and Q3) is
cheaper than Greedy; Q4 -- which first decomposes into two subqueries and
then runs the greedy heuristic inside a dynamic program -- has the largest
and most stable running time of the four queries.
"""

import pytest

from benchmarks.conftest import solve_once
from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q2, Q3, Q4, Q5

RATIO = 0.25

QUERY_METHODS = [
    (Q2, "greedy"),
    (Q2, "drastic"),
    (Q3, "greedy"),
    (Q3, "drastic"),
    (Q4, "greedy"),
    (Q5, "greedy"),
]


@pytest.mark.parametrize(
    "query, method", QUERY_METHODS, ids=[f"{q.name}-{m}" for q, m in QUERY_METHODS]
)
def test_fig14_ego_network_heuristics(benchmark, ego_network, query, method):
    database = ego_network.aligned_to(query)
    total = evaluate(query, database).output_count()
    if total == 0:
        pytest.skip(f"{query.name} has no results on the scaled-down network")
    k = max(1, int(RATIO * total))
    solver = ADPSolver(heuristic=method)

    solution = solve_once(
        benchmark, solver, query, database, k,
        figure="14", query_name=query.name, method=method, output_size=total,
    )
    assert solution.removed_outputs >= k
