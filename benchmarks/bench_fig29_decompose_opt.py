"""Figure 29: Decompose combination strategies on Q8.

Paper's claim: enumerating all partitions at once is the slowest, pairwise
combination is better, and the improved dynamic program is the fastest --
all three return the same (optimal) objective.
"""

import pytest

from repro.core.adp import ADPSolver
from repro.core.decompose import DecomposeStrategy
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q8
from repro.workloads.synthetic import generate_q8_instance

RATIO = 0.1

STRATEGIES = {
    "full-enumeration": DecomposeStrategy.FULL_ENUMERATION,
    "pairwise": DecomposeStrategy.PAIRWISE,
    "improved-dp": DecomposeStrategy.IMPROVED_DP,
}


@pytest.fixture(scope="module")
def q8_instance():
    database = generate_q8_instance(unary_tuples=8, binary_tuples=16, seed=29)
    total = evaluate(Q8, database).output_count()
    return database, max(1, int(RATIO * total))


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_fig29_decompose_strategies(benchmark, q8_instance, strategy):
    database, k = q8_instance
    solver = ADPSolver(decompose_strategy=STRATEGIES[strategy])

    solution = benchmark(lambda: solver.solve_in_context(Q8, database, k))
    benchmark.extra_info.update(
        {"figure": "29", "strategy": strategy, "k": k, "solution_size": solution.size}
    )
    assert solution.optimal


def test_fig29_strategies_agree_on_objective(q8_instance):
    database, k = q8_instance
    sizes = {
        name: ADPSolver(decompose_strategy=strategy).solve(Q8, database, k).size
        for name, strategy in STRATEGIES.items()
    }
    assert len(set(sizes.values())) == 1, sizes
