"""Figures 20-23: the singleton query Q6 (easy) on Zipfian data, Exact.

Paper's claims: the exact (Singleton) algorithm is fast regardless of ρ, its
running time is dominated by the profit computation (so it barely depends on
the solution size), and the solution size decreases with the skew α.
"""

import pytest

from benchmarks.conftest import solve_once
from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q6

ALPHAS = (0.0, 1.0)
RATIOS = (0.1, 0.75)


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("ratio", RATIOS)
def test_fig20_23_q6_exact(benchmark, zipf_instances, alpha, ratio):
    database = zipf_instances[alpha].restricted_to(("R1", "R2"))
    total = evaluate(Q6, database).output_count()
    k = max(1, int(ratio * total))
    solver = ADPSolver()

    solution = solve_once(
        benchmark, solver, Q6, database, k,
        figure="20-23", alpha=alpha, ratio=ratio, output_size=total,
    )
    assert solution.optimal


def test_fig21_23_quality_decreases_with_skew(benchmark, zipf_instances):
    solver = ADPSolver()

    def sweep():
        sizes = {}
        for alpha in ALPHAS:
            database = zipf_instances[alpha].restricted_to(("R1", "R2"))
            total = evaluate(Q6, database).output_count()
            sizes[alpha] = solver.solve_in_context(Q6, database, max(1, int(0.5 * total))).size
        return sizes

    sizes = benchmark(sweep)
    benchmark.extra_info.update({"figure": "21/23", "sizes": sizes})
    assert sizes[1.0] <= sizes[0.0]
