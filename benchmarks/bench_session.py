"""Session API benchmarks: bind once, solve many, mutate incrementally.

Workload: the Figure 12 instance (TPC-H-like, 60 tuples, Q1, k from
ρ = 0.1) -- the same instance ``bench_fig12_bruteforce_time`` solves.

The headline acceptance check is incremental what-if speed:
``session.what_if(refs)`` answers the deletion-propagation question ("how
many witnesses / outputs disappear if ``refs`` go away?") through the delta
semijoin over cached packed provenance, and must be **at least 5x faster**
than the legacy alternative -- copying the database without the refs and
re-evaluating from scratch.  A parity test (``tests/test_session.py`` and the
assertions below) pins down that both routes produce identical witness sets.
"""

import time

import pytest

from repro.engine.evaluate import evaluate_in_context
from repro.experiments.harness import target_from_ratio
from repro.session import Session
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch

SMALL_SIZE = 60
RATIO = 0.1

#: Acceptance threshold: incremental what-if vs fresh evaluate-after-deletion.
MIN_WHAT_IF_SPEEDUP = 5.0


def _best_of(fn, repeats=7, inner=40):
    """Min-of-means timing: robust against scheduler noise on CI runners."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


@pytest.fixture(scope="module")
def fig12_session():
    """A session bound to the Figure 12 instance, with Q1 prepared and solved."""
    database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
    session = Session(database)
    prepared = session.prepare(Q1)
    k = target_from_ratio(Q1, database, RATIO)
    # The deletion set under study is the solver's own recommendation: the
    # natural what-if workflow is "solve, then probe the suggested deletion".
    solution = session.solve(prepared, k, heuristic="greedy")
    refs = frozenset(solution.removed)
    session.what_if(refs, prepared)  # warm cache + postings index
    return session, prepared, refs, k


def test_what_if_speedup_and_parity(benchmark, fig12_session):
    """Acceptance: what_if >= 5x faster than fresh evaluate after deletion."""
    session, prepared, refs, _k = fig12_session
    database = session.database

    def incremental():
        entry = session.what_if(refs, prepared).single
        return entry.witnesses_removed, entry.outputs_removed

    def fresh():
        result = evaluate_in_context(Q1, database.without(refs), use_cache=False)
        return result.witness_count(), result.output_count()

    # Parity first: the delta semijoin and the fresh join agree exactly --
    # counts here, full witness sets below.
    entry = session.what_if(refs, prepared).single
    fresh_result = evaluate_in_context(Q1, database.without(refs), use_cache=False)
    assert entry.after.output_count() == fresh_result.output_count()
    assert set(entry.after.output_rows) == set(fresh_result.output_rows)
    assert {w.refs for w in entry.after.witnesses} == {
        w.refs for w in fresh_result.witnesses
    }

    incremental_seconds = _best_of(incremental)
    fresh_seconds = _best_of(fresh)
    speedup = fresh_seconds / incremental_seconds
    benchmark.extra_info.update(
        {
            "figure": "session",
            "what_if_us": round(incremental_seconds * 1e6, 1),
            "fresh_us": round(fresh_seconds * 1e6, 1),
            "speedup": round(speedup, 1),
            "deleted_refs": len(refs),
        }
    )
    assert speedup >= MIN_WHAT_IF_SPEEDUP, (
        f"what_if is only {speedup:.1f}x faster than a fresh evaluate "
        f"(need >= {MIN_WHAT_IF_SPEEDUP}x): "
        f"{incremental_seconds * 1e6:.1f}us vs {fresh_seconds * 1e6:.1f}us"
    )
    benchmark(incremental)


def test_what_if_materialized_view(benchmark, fig12_session):
    """Materializing the full post-deletion result (lazy `after` view)."""
    session, prepared, refs, _k = fig12_session

    def materialize():
        return session.what_if(refs, prepared).single.after.witness_count()

    survivors = materialize()
    assert survivors >= 0
    benchmark(materialize)


def test_prepared_solve_reuses_session_state(benchmark, fig12_session):
    """Steady-state session solve: evaluation cache + prepared plan reused."""
    session, prepared, _refs, k = fig12_session
    solution = benchmark(lambda: session.solve(prepared, k, heuristic="greedy"))
    assert solution.removed_outputs >= k
    benchmark.extra_info.update({"figure": "session", "k": k})


def test_solve_many_amortizes_curves(benchmark, fig12_session):
    """Batched solves share one evaluation and one curve per query."""
    session, prepared, _refs, k = fig12_session
    targets = [1, 2, k]

    def batch():
        return session.solve_many(
            [(prepared, target) for target in targets], heuristic="greedy"
        )

    solutions = benchmark(batch)
    assert [s.k for s in solutions] == targets
    benchmark.extra_info.update({"figure": "session", "targets": targets})


def test_apply_deletions_migrates_cache(benchmark):
    """Deletion + next evaluation, served by cache migration (no re-join)."""
    def scenario():
        database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
        session = Session(database)
        prepared = session.prepare(Q1)
        base = session.evaluate(prepared)
        refs = sorted(base.participating_refs(), key=repr)[:5]
        session.apply_deletions(refs)
        after = session.evaluate(prepared)
        assert session.stats.joins == 1  # the deletion did not trigger a re-join
        return after.output_count()

    outputs = benchmark(scenario)
    assert outputs > 0


# --------------------------------------------------------------------------- #
# Array-backend acceptance: NumPy-backed sessions >= 3x at the largest scale
# --------------------------------------------------------------------------- #
#: Largest configured scale for the backend comparison (the what-if probes
#: above deliberately stay tiny -- they pin incremental-vs-fresh latency,
#: which the auto backend routes to the Python kernels below the cost-model
#: floor).  This workload is the batched-session shape at engine scale.
BACKEND_SCALE_R2_TUPLES = 60_000
#: Acceptance floor (locally measured ~3.5-4.5x; 3x leaves CI headroom).
#: Below-floor measurements are re-measured once before failing, and
#: REPRO_SKIP_BACKEND_ACCEPTANCE=1 downgrades the assert to a report.
MIN_BACKEND_SPEEDUP = 3.0


def test_session_backend_speedup_at_scale(benchmark):
    """A fresh solve_many batch runs >= 3x faster on backend="numpy".

    Bind once, solve many: one evaluation plus one cost curve shared by the
    batch -- the session workflow the API was built for, at a scale where
    the array kernels dominate.  Solutions are asserted identical across
    backends; full packing parity lives in the backend-parity suite.
    """
    from repro.engine.backend import numpy_available
    from repro.query.parser import parse_query
    from repro.workloads.zipf import generate_zipf_path

    if not numpy_available():
        pytest.skip("numpy not installed: python backend only")

    query = parse_query("Qhard(A) :- R1(A), R2(A, B), R3(B)")
    database = generate_zipf_path(
        r2_tuples=BACKEND_SCALE_R2_TUPLES, alpha=1.1, seed=13
    )
    with Session(database, backend="python") as sizing:
        with sizing.activate():
            kmax = target_from_ratio(query, database, RATIO)
    targets = [max(1, kmax // 2), kmax]

    def fresh_batch(backend):
        with Session(database, backend=backend) as session:
            start = time.perf_counter()
            solutions = session.solve_many(
                [(query, k) for k in targets], heuristic="greedy"
            )
            return time.perf_counter() - start, solutions

    python_seconds, python_solutions = fresh_batch("python")
    numpy_seconds, numpy_solutions = fresh_batch("numpy")
    assert [s.removed for s in numpy_solutions] == [
        s.removed for s in python_solutions
    ]

    speedup = python_seconds / numpy_seconds
    if speedup < MIN_BACKEND_SPEEDUP:
        # One retake before failing (shared runners throttle unpredictably).
        python_seconds = min(python_seconds, fresh_batch("python")[0])
        numpy_seconds = min(numpy_seconds, fresh_batch("numpy")[0])
        speedup = python_seconds / numpy_seconds
    benchmark.extra_info.update(
        {
            "figure": "session-backend",
            "r2_tuples": BACKEND_SCALE_R2_TUPLES,
            "targets": targets,
            "python_ms": round(python_seconds * 1e3, 1),
            "numpy_ms": round(numpy_seconds * 1e3, 1),
            "speedup": round(speedup, 2),
        }
    )
    import os

    if os.environ.get("REPRO_SKIP_BACKEND_ACCEPTANCE") == "1":
        print(f"backend speedup {speedup:.2f}x (acceptance assert skipped)")
    else:
        assert speedup >= MIN_BACKEND_SPEEDUP, (
            f"numpy-backed solve_many is only {speedup:.2f}x faster than python "
            f"(need >= {MIN_BACKEND_SPEEDUP}x): "
            f"{numpy_seconds * 1e3:.0f}ms vs {python_seconds * 1e3:.0f}ms"
        )

    def steady_state():
        with Session(database, backend="numpy") as session:
            return len(
                session.solve_many([(query, k) for k in targets], heuristic="greedy")
            )

    benchmark.pedantic(steady_state, rounds=1, iterations=1)
