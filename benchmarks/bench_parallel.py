"""Worker-scaling benchmarks for the sharded parallel subsystem.

Workload: the Figure 12 family at service scale -- the TPC-H-like instance
solved in Figure 12, grown to a few thousand tuples, serving a mixed
``solve_many`` batch of Q1 plus its sub-join/projection variants (the
"many tenants, one database" shape the parallel subsystem targets).  The
same batch runs on 1, 2 and 4 workers; per-query results must match the
serial engine exactly, and on a multi-core runner the 4-worker batch is
expected to reach the >= 2x acceptance speedup (recorded in
``extra_info["speedup_w4"]``; asserted only when the machine actually has
the cores, so single-core CI still validates correctness).

Run with:  pytest benchmarks/bench_parallel.py --benchmark-only
"""

import os
import time

import pytest

from repro.query.parser import parse_query
from repro.session import Session
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch

from tests.conftest import packed_columns

#: Figure 12 instance, scaled up so per-solve work dominates dispatch cost.
TOTAL_TUPLES = 2400
SEED = 7

#: The acceptance criterion: 4 workers, >= 2x over the serial batch.
MIN_SPEEDUP_W4 = 2.0

#: Distinct query groups of the batch (each dispatches to its own worker).
#: All are hard-leaf projections of the Q1 join -- the group shape
#: ``solve_many`` dispatches to workers (recursive poly-time groups stay
#: parent-side to preserve serial-identical tie-breaking).
_Q1_BODY = "Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)"
BATCH_QUERIES = (
    Q1,
    parse_query(f"QA(NK, OK) :- {_Q1_BODY}"),
    parse_query(f"QB(SK, PK) :- {_Q1_BODY}"),
    parse_query(f"QC(NK, PK, OK) :- {_Q1_BODY}"),
    parse_query(f"QD(SK, OK) :- {_Q1_BODY}"),
    parse_query(f"QE(NK, SK, OK) :- {_Q1_BODY}"),
)


def batch_requests():
    return [(query, k) for query in BATCH_QUERIES for k in (2, 5)]


@pytest.fixture(scope="module")
def fig12_database():
    return generate_tpch(total_tuples=TOTAL_TUPLES, seed=SEED)


def run_batch(database, workers):
    """One timed ``solve_many`` batch on a session with N workers.

    Every worker count gets the same treatment -- warm-up batch (interning,
    prepared plans, pool start + database shipping where applicable), then
    ``clear_cache`` (which also reaches worker-held result caches) -- so
    the scaling curve compares steady-state joins against steady-state
    joins, not a cold serial run against warm workers.
    """
    with Session(database, workers=workers, parallel_threshold=0) as session:
        session.solve_many(batch_requests(), heuristic="greedy")  # warm up
        session.clear_cache()
        start = time.perf_counter()
        solutions = session.solve_many(batch_requests(), heuristic="greedy")
        elapsed = time.perf_counter() - start
    return solutions, elapsed


def test_worker_scaling_curve(benchmark, fig12_database):
    """1/2/4-worker scaling of the Figure 12 service batch."""
    timings = {}
    solutions = {}
    for workers in (1, 2, 4):
        solutions[workers], timings[workers] = run_batch(fig12_database, workers)

    # Correctness before speed: every worker count returns the serial answers.
    reference = solutions[1]
    for workers in (2, 4):
        assert [s.size for s in solutions[workers]] == [s.size for s in reference]
        assert [s.removed for s in solutions[workers]] == [
            s.removed for s in reference
        ]

    speedup_w2 = timings[1] / timings[2]
    speedup_w4 = timings[1] / timings[4]
    benchmark.extra_info.update(
        {
            "figure": "parallel-scaling",
            "workload": f"tpch[{TOTAL_TUPLES}] x {len(batch_requests())} requests",
            "cpus": os.cpu_count(),
            "seconds_w1": round(timings[1], 4),
            "seconds_w2": round(timings[2], 4),
            "seconds_w4": round(timings[4], 4),
            "speedup_w2": round(speedup_w2, 2),
            "speedup_w4": round(speedup_w4, 2),
        }
    )
    # The acceptance assert arms on >=4-core machines; set
    # REPRO_BENCH_NO_SPEEDUP_ASSERT=1 to record the curve without failing
    # on a noisy shared runner.
    strict = not os.environ.get("REPRO_BENCH_NO_SPEEDUP_ASSERT")
    if strict and (os.cpu_count() or 1) >= 4:
        assert speedup_w4 >= MIN_SPEEDUP_W4, (
            f"4-worker solve_many is only {speedup_w4:.2f}x over serial "
            f"(acceptance requires >= {MIN_SPEEDUP_W4}x on a 4-core runner): "
            f"{timings[4]:.3f}s vs {timings[1]:.3f}s"
        )
        # speedup_w2 is recorded in extra_info but deliberately not
        # asserted: 6 groups over 2 workers plus IPC can legitimately land
        # below any fixed bar on a noisy runner.
    benchmark(lambda: run_batch(fig12_database, 4)[1])


def test_sharded_evaluate_matches_serial(benchmark, fig12_database):
    """Steady-state sharded evaluation (partition caches warm, pool resident)."""
    serial = Session(fig12_database)
    expected = serial.evaluate(Q1)
    with Session(fig12_database, workers=2, parallel_threshold=0) as session:
        first = session.evaluate(Q1)
        assert list(first.witness_outputs) == list(expected.witness_outputs)
        assert packed_columns(first.provenance) == packed_columns(expected.provenance)

        def evaluate_uncached():
            session.clear_cache()
            return session.evaluate(Q1).witness_count()

        witnesses = benchmark(evaluate_uncached)
        assert witnesses == expected.witness_count()
        benchmark.extra_info.update(
            {"figure": "parallel-scaling", "witnesses": witnesses}
        )
