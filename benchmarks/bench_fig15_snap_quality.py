"""Figure 15: solution quality on the ego-network queries Q2..Q5.

Paper's claim: the number of removed input tuples grows with ρ for every
query, and Greedy/Drastic coincide on the full CQs Q2, Q3; Q4 (a cross
product of two length-2 path queries) needs far fewer removals than its huge
output size suggests.
"""

import pytest

from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q2, Q4


@pytest.mark.parametrize("query", [Q2, Q4], ids=lambda q: q.name)
def test_fig15_quality_grows_with_ratio(benchmark, ego_network, query):
    database = ego_network.aligned_to(query)
    total = evaluate(query, database).output_count()
    if total == 0:
        pytest.skip(f"{query.name} has no results on the scaled-down network")
    solver = ADPSolver(heuristic="greedy")

    def run_two_ratios():
        low = solver.solve_in_context(query, database, max(1, int(0.1 * total)))
        high = solver.solve_in_context(query, database, max(1, int(0.5 * total)))
        return low, high

    low, high = benchmark(run_two_ratios)
    benchmark.extra_info.update(
        {
            "figure": "15",
            "query": query.name,
            "output_size": total,
            "size_at_10pct": low.size,
            "size_at_50pct": high.size,
        }
    )
    assert low.size <= high.size
    # Removing half the output never requires more tuples than the input holds.
    assert high.size <= database.total_tuples()
