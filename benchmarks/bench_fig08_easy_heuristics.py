"""Figure 8: reporting σθQ1 with heuristics (Greedy, Drastic) vs Exact.

Paper's claim: on the (easy) selected query the heuristics are faster than
the exact reporting algorithm while -- on this data distribution -- finding
solutions of the same size (Figure 9 reads the quality off the same runs).
"""

import pytest

from benchmarks.conftest import RATIOS
from repro.core.adp import ADPSolver
from repro.core.selection import solve_with_selection
from repro.workloads.queries import Q1


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("method", ["exact", "greedy", "drastic"])
def test_fig08_selected_q1_methods(benchmark, tpch_selected, ratio, method):
    prepared = tpch_selected[max(tpch_selected)]
    k = max(1, int(ratio * prepared["selected_output"]))

    if method == "exact":
        solution = benchmark(
            lambda: solve_with_selection(
                Q1, prepared["selection"], prepared["database"], k, solver=ADPSolver()
            )
        )
    else:
        solver = ADPSolver(heuristic=method)
        solution = benchmark(lambda: solver.solve_in_context(Q1, prepared["filtered"], k))

    benchmark.extra_info.update(
        {
            "figure": "8",
            "method": method,
            "ratio": ratio,
            "k": k,
            "solution_size": solution.size,
        }
    )
    assert solution.removed_outputs >= k
