"""Shared helpers for the figure benchmarks.

Every module in this directory regenerates one figure (or one group of
figures sharing a workload) of the paper's evaluation section with
``pytest-benchmark``:

* the *benchmark time* is the running time of the method(s) the figure plots
  (scaled-down inputs, pure Python -- absolute numbers differ from the
  paper's Java+PostgreSQL setup);
* each benchmark also records the *quality* (solution size) in
  ``benchmark.extra_info`` so quality figures can be read off the same run;
* assertions at the end of each benchmark check the figure's qualitative
  claim (who wins, how quality orders), so the benchmarks double as
  regression tests for the reproduced shapes.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.adp import ADPSolver
from repro.core.selection import Selection
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import Q1
from repro.workloads.snap import EgoNetworkConfig, generate_ego_network
from repro.workloads.tpch import SELECTED_PART_KEY, generate_tpch
from repro.workloads.zipf import generate_zipf_path

#: Input sizes used by the scaled-down TPC-H benchmarks (the paper sweeps
#: 1k .. 10M; pure Python keeps the same *relative* spread at smaller scale).
TPCH_SIZES = (200, 600)

#: Removal ratios used throughout the paper.
RATIOS = (0.1, 0.5)


@pytest.fixture(scope="session")
def tpch_instances():
    """One TPC-H-like database per benchmark input size."""
    return {size: generate_tpch(total_tuples=size, seed=7) for size in TPCH_SIZES}


@pytest.fixture(scope="session")
def tpch_selected(tpch_instances):
    """The σ[PK = 13370] variant of every TPC-H instance plus its output size."""
    selection = Selection.equals({"PK": SELECTED_PART_KEY})
    prepared = {}
    for size, database in tpch_instances.items():
        filtered = selection.apply(Q1, database)
        prepared[size] = {
            "database": database,
            "filtered": filtered,
            "selection": selection,
            "selected_output": evaluate(Q1, filtered).output_count(),
        }
    return prepared


@pytest.fixture(scope="session")
def ego_network():
    """The scaled-down synthetic ego network shared by the Q2..Q5 benchmarks."""
    return generate_ego_network(EgoNetworkConfig(nodes=48, seed=414))


@pytest.fixture(scope="session")
def zipf_instances():
    """Zipfian path instances keyed by the skew parameter alpha."""
    return {
        alpha: generate_zipf_path(r2_tuples=300, alpha=alpha, seed=13)
        for alpha in (0.0, 0.25, 0.5, 1.0)
    }


def solve_once(benchmark, solver: ADPSolver, query, database, k, **extra_info):
    """Benchmark one solver call and record quality metadata."""
    solution = benchmark(lambda: solver.solve_in_context(query, database, k))
    benchmark.extra_info.update(
        {
            "k": k,
            "solution_size": solution.size,
            "optimal": solution.optimal,
            "removed_outputs": solution.removed_outputs,
            **extra_info,
        }
    )
    return solution
