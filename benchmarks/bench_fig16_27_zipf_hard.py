"""Figures 16-19 and 24-27: Qpath (hard) on Zipfian data.

Paper's claims:

* running time and solution size grow with the input size and with ρ;
* for fixed input size and ρ, the solution size *decreases* as the skew α
  increases (a few heavy values remove many outputs at once);
* Drastic's running time is insensitive to α (profits are computed once),
  while Greedy's shrinks with the solution size.
"""

import pytest

from benchmarks.conftest import solve_once
from repro.core.adp import ADPSolver
from repro.engine.evaluate import evaluate_in_context as evaluate
from repro.workloads.queries import QPATH_EXP

ALPHAS = (0.0, 0.25, 0.5, 1.0)
RATIO = 0.5


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("method", ["greedy", "drastic"])
def test_fig16_27_zipf_qpath(benchmark, zipf_instances, alpha, method):
    database = zipf_instances[alpha]
    total = evaluate(QPATH_EXP, database).output_count()
    k = max(1, int(RATIO * total))
    solver = ADPSolver(heuristic=method)

    solution = solve_once(
        benchmark, solver, QPATH_EXP, database, k,
        figure="16-19/24-27", alpha=alpha, method=method, output_size=total,
    )
    assert solution.removed_outputs >= k


def test_fig16_27_skew_reduces_solution_size(benchmark, zipf_instances):
    """The quality series of Figures 17/19/25/27: size decreases with alpha."""
    solver = ADPSolver(heuristic="greedy")

    def sweep():
        sizes = {}
        for alpha, database in zipf_instances.items():
            total = evaluate(QPATH_EXP, database).output_count()
            k = max(1, int(RATIO * total))
            sizes[alpha] = solver.solve_in_context(QPATH_EXP, database, k).size
        return sizes

    sizes = benchmark(sweep)
    benchmark.extra_info.update({"figure": "17/19/25/27", "sizes": sizes})
    assert sizes[1.0] <= sizes[0.5] <= sizes[0.0] + 1
