#!/usr/bin/env python
"""Benchmark smoke guard: fail if the Figure 12 solve regresses > 2x.

Runs the ``bench_fig12`` workload (TPC-H-like, 60 tuples, Q1, k from
ρ = 0.1; methods bruteforce / greedy / drastic), the session what-if
probe, and the sharded parallel path (a mixed ``solve_many`` batch on a
2-worker session over a larger instance -- guarding partition + dispatch +
merge overhead, not multi-core speedup, so the check is meaningful on any
runner), and compares wall time against the committed baseline
``benchmarks/baseline_fig12.json``.

Machines differ, so raw seconds are not comparable across hardware: every
run first times a fixed pure-Python *calibration* workload, and the
thresholds scale by ``calibration_now / calibration_baseline``.  A method
fails when::

    now > THRESHOLD * baseline * (calibration_now / calibration_baseline)

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py          # check
    PYTHONPATH=src python benchmarks/check_regression.py --update # re-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_fig12.json"

#: Allowed slowdown vs (calibration-scaled) baseline before the check fails.
THRESHOLD = 2.0

SMALL_SIZE = 60
RATIO = 0.1

#: The parallel-path workload: large enough that sharding engages, small
#: enough that the guard stays a smoke test.
PARALLEL_SIZE = 800
PARALLEL_WORKERS = 2


def calibrate() -> float:
    """Seconds for a fixed pure-Python workload (integer + dict churn).

    Shaped like the engine's hot paths (arithmetic, tuple keys, dict
    probes), so the scale factor tracks interpreter/hardware speed for the
    code under test reasonably well.
    """
    start = time.perf_counter()
    total = 0
    for i in range(200_000):
        total += i % 7
    table = {}
    for i in range(60_000):
        table[(i % 997, i % 31)] = i
    for i in range(60_000):
        total += table.get((i % 991, i % 29), 0)
    assert total >= 0
    return time.perf_counter() - start


def best_of(fn, repeats: int = 3) -> float:
    """Fastest of ``repeats`` single runs (solves are not micro-benchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict:
    """One timing per guarded workload, in seconds."""
    from repro.core.bruteforce import bruteforce_solve
    from repro.experiments.harness import target_from_ratio
    from repro.session import Session
    from repro.workloads.queries import Q1
    from repro.workloads.tpch import generate_tpch

    database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
    session = Session(database)
    prepared = session.prepare(Q1)
    with session.activate():
        k = target_from_ratio(Q1, database, RATIO)

    timings = {}
    timings["greedy"] = best_of(
        lambda: session.solve(prepared, k, heuristic="greedy")
    )
    timings["drastic"] = best_of(
        lambda: session.solve(prepared, k, heuristic="drastic")
    )

    def run_bruteforce():
        with session.activate():
            bruteforce_solve(Q1, database, k, max_candidates=2000)

    timings["bruteforce"] = best_of(run_bruteforce)

    solution = session.solve(prepared, k, heuristic="greedy")
    refs = frozenset(solution.removed)
    session.what_if(refs, prepared)  # warm the postings index

    def what_if_probe():
        for _ in range(200):
            session.what_if(refs, prepared).single.outputs_removed

    timings["what_if_x200"] = best_of(what_if_probe)

    # Parallel path: mixed solve_many batch on a persistent 2-worker pool
    # (pool start + database shipping are excluded by the warm-up batch --
    # the guard pins the steady-state dispatch/merge cost).
    from repro.query.parser import parse_query

    parallel_db = generate_tpch(total_tuples=PARALLEL_SIZE, seed=7)
    body = "Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)"
    batch = [
        (Q1, 3),
        (parse_query(f"QA(NK, OK) :- {body}"), 2),
        (parse_query(f"QB(SK, PK) :- {body}"), 2),
    ]
    with Session(
        parallel_db, workers=PARALLEL_WORKERS, parallel_threshold=0
    ) as parallel_session:
        parallel_session.solve_many(batch, heuristic="greedy")  # warm up

        def parallel_batch():
            parallel_session.clear_cache()
            parallel_session.solve_many(batch, heuristic="greedy")

        timings["parallel_batch_w2"] = best_of(parallel_batch)
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline JSON"
    )
    args = parser.parse_args(argv)

    calibration = calibrate()
    timings = measure()

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "calibration_seconds": round(calibration, 6),
                    "threshold": THRESHOLD,
                    "workload": f"tpch[{SMALL_SIZE}] Q1 ratio={RATIO} (Figure 12)",
                    "methods": {k: round(v, 6) for k, v in timings.items()},
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    scale = calibration / baseline["calibration_seconds"]
    print(f"calibration: {calibration:.4f}s (baseline scale x{scale:.2f})")

    failed = []
    for method, now in timings.items():
        base = baseline["methods"].get(method)
        if base is None:
            print(f"  {method}: {now * 1e3:8.2f}ms (no baseline entry, skipped)")
            continue
        budget = THRESHOLD * base * scale
        status = "ok" if now <= budget else "REGRESSION"
        print(
            f"  {method}: {now * 1e3:8.2f}ms  budget {budget * 1e3:8.2f}ms "
            f"(baseline {base * 1e3:.2f}ms)  {status}"
        )
        if now > budget:
            failed.append(method)

    if failed:
        print(f"FAILED: {', '.join(failed)} regressed more than {THRESHOLD}x")
        return 1
    print("benchmark smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
