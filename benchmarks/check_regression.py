#!/usr/bin/env python
"""Benchmark smoke guard: fail if the Figure 12 solve regresses > 2x.

Runs the ``bench_fig12`` workload (TPC-H-like, 60 tuples, Q1, k from
ρ = 0.1; methods bruteforce / greedy / drastic), the session what-if
probe, and the sharded parallel path (a mixed ``solve_many`` batch on a
2-worker session over a larger instance -- guarding partition + dispatch +
merge overhead, not multi-core speedup, so the check is meaningful on any
runner), and compares wall time against the committed baseline
``benchmarks/baseline_fig12.json``.

Machines differ, so raw seconds are not comparable across hardware: every
run first times a fixed pure-Python *calibration* workload, and the
thresholds scale by ``calibration_now / calibration_baseline``.  A method
fails when::

    now > THRESHOLD * baseline * (calibration_now / calibration_baseline)

Besides the pass/fail guard, ``--record`` appends the run (timestamps,
calibration, per-method seconds, interpreter + NumPy versions) to the
committed trajectory file ``benchmarks/BENCH_fig12.json``; CI records one
entry per run and uploads the file as a workflow artifact, so the perf
history accumulates instead of evaporating with each runner.

``--obs-overhead`` runs a separate relative gate for the observability
layer (:mod:`repro.obs`): the same greedy solve is timed with no
instrumentation, with an installed-but-unsampled tracer
(``Tracer(enabled=False)``, stats collection off -- the configuration
every instrumentation point must treat as a no-op), and with the fully
enabled path (sampled tracer plus an installed ``StatsCollector``).  The
check fails when the disabled path costs more than ``OBS_OVERHEAD_LIMIT``
(2%) or the enabled path more than ``STATS_OVERHEAD_LIMIT`` (10%), each
plus a small absolute grace so sub-millisecond jitter cannot fail the
gate.  The variants are interleaved so clock drift hits all sides
equally.  With ``--record`` the run also appends an ``obs`` section (both
overhead ratios + per-stage span totals from one enabled instrumented
solve) to the trajectory file.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py          # check
    PYTHONPATH=src python benchmarks/check_regression.py --update # re-baseline
    PYTHONPATH=src python benchmarks/check_regression.py --record # + trajectory
    PYTHONPATH=src python benchmarks/check_regression.py --obs-overhead
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path


def repro_test_seed(default: int = 101) -> int:
    """The ``REPRO_TEST_SEED`` env knob (same contract as tests/conftest.py).

    The workload seeds of the guarded benchmarks are fixed (the committed
    baseline depends on them), but every ``--record`` entry stamps the
    active fuzz seed so a CI artifact names the exact value to export when
    replaying that run's differential property suites locally.
    """
    raw = os.environ.get("REPRO_TEST_SEED", "")
    try:
        return int(raw)
    except ValueError:
        return default

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_fig12.json"
TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_fig12.json"

#: Allowed slowdown vs (calibration-scaled) baseline before the check fails.
THRESHOLD = 2.0

SMALL_SIZE = 60
RATIO = 0.1

#: The parallel-path workload: large enough that sharding engages, small
#: enough that the guard stays a smoke test.
PARALLEL_SIZE = 800
PARALLEL_WORKERS = 2

#: The array-backend probe: a mid-scale NP-hard projection workload (zipf
#: path family) where the vectorized kernels are engaged, guarding the
#: NumPy solve path itself (and, in the trajectory, the python/numpy gap).
BACKEND_R2_TUPLES = 8_000
BACKEND_RATIO = 0.1

#: Allowed relative cost of the installed-but-unsampled tracer path
#: (stats collection off: the disabled path of both layers together).
OBS_OVERHEAD_LIMIT = 1.02
#: Allowed relative cost of the fully enabled instrumentation: sampled
#: tracer plus an installed StatsCollector (per-operator counters,
#: build-side skew summaries, the estimate-vs-actual ledger inputs).
STATS_OVERHEAD_LIMIT = 1.10
#: Absolute grace (seconds) under which the overhead gate never fails:
#: at small workload durations, 2% is below timer/scheduler jitter.
OBS_ABS_GRACE_S = 0.010
OBS_REPEATS = 5


def calibrate() -> float:
    """Seconds for a fixed pure-Python workload (integer + dict churn).

    Shaped like the engine's hot paths (arithmetic, tuple keys, dict
    probes), so the scale factor tracks interpreter/hardware speed for the
    code under test reasonably well.
    """
    start = time.perf_counter()
    total = 0
    for i in range(200_000):
        total += i % 7
    table = {}
    for i in range(60_000):
        table[(i % 997, i % 31)] = i
    for i in range(60_000):
        total += table.get((i % 991, i % 29), 0)
    assert total >= 0
    return time.perf_counter() - start


def best_of(fn, repeats: int = 3) -> float:
    """Fastest of ``repeats`` single runs (solves are not micro-benchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict:
    """One timing per guarded workload, in seconds."""
    from repro.core.bruteforce import bruteforce_solve
    from repro.experiments.harness import target_from_ratio
    from repro.session import Session
    from repro.workloads.queries import Q1
    from repro.workloads.tpch import generate_tpch

    database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
    session = Session(database)
    prepared = session.prepare(Q1)
    with session.activate():
        k = target_from_ratio(Q1, database, RATIO)

    timings = {}
    timings["greedy"] = best_of(
        lambda: session.solve(prepared, k, heuristic="greedy")
    )
    timings["drastic"] = best_of(
        lambda: session.solve(prepared, k, heuristic="drastic")
    )

    def run_bruteforce():
        with session.activate():
            bruteforce_solve(Q1, database, k, max_candidates=2000)

    timings["bruteforce"] = best_of(run_bruteforce)

    solution = session.solve(prepared, k, heuristic="greedy")
    refs = frozenset(solution.removed)
    session.what_if(refs, prepared)  # warm the postings index

    def what_if_probe():
        for _ in range(200):
            session.what_if(refs, prepared).single.outputs_removed

    timings["what_if_x200"] = best_of(what_if_probe)

    # Parallel path: mixed solve_many batch on a persistent 2-worker pool
    # (pool start + database shipping are excluded by the warm-up batch --
    # the guard pins the steady-state dispatch/merge cost).
    from repro.query.parser import parse_query

    parallel_db = generate_tpch(total_tuples=PARALLEL_SIZE, seed=7)
    body = "Supplier(NK, SK), PartSupp(SK, PK), LineItem(OK, PK)"
    batch = [
        (Q1, 3),
        (parse_query(f"QA(NK, OK) :- {body}"), 2),
        (parse_query(f"QB(SK, PK) :- {body}"), 2),
    ]
    with Session(
        parallel_db, workers=PARALLEL_WORKERS, parallel_threshold=0
    ) as parallel_session:
        parallel_session.solve_many(batch, heuristic="greedy")  # warm up

        def parallel_batch():
            parallel_session.clear_cache()
            parallel_session.solve_many(batch, heuristic="greedy")

        timings["parallel_batch_w2"] = best_of(parallel_batch)

    # Array-backend probe: fresh greedy solve per backend (numpy entry is
    # absent when NumPy is not installed; absent methods are simply not
    # compared against the baseline).
    from repro.engine.backend import numpy_available
    from repro.workloads.zipf import generate_zipf_path

    qhard = parse_query("Qhard(A) :- R1(A), R2(A, B), R3(B)")
    backend_db = generate_zipf_path(
        r2_tuples=BACKEND_R2_TUPLES, alpha=1.1, seed=13
    )
    with Session(backend_db, backend="python") as sizing:
        with sizing.activate():
            backend_k = target_from_ratio(qhard, backend_db, BACKEND_RATIO)
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    for backend in backends:

        def backend_solve(backend=backend):
            with Session(backend_db, backend=backend) as session:
                session.solve(qhard, backend_k, heuristic="greedy")

        timings[f"backend_solve_{backend}"] = best_of(backend_solve, repeats=2)
    return timings


def measure_obs_overhead() -> dict:
    """The observability-layer overhead probe (zipf-8000 greedy solve).

    Times three interleaved variants: no instrumentation at all, the
    installed-but-unsampled tracer with stats collection off (the
    disabled path every solve pays), and the fully enabled path (sampled
    tracer plus an installed :class:`StatsCollector`).  Returns the two
    overhead ratios plus the per-stage span totals of one fully
    instrumented solve (the enabled-path stage timings ``--record``
    persists).
    """
    from repro.experiments.harness import target_from_ratio
    from repro.obs.render import aggregate_stage_ms
    from repro.obs.stats import StatsCollector, use_stats
    from repro.obs.trace import Tracer, use_tracer
    from repro.query.parser import parse_query
    from repro.session import Session
    from repro.workloads.zipf import generate_zipf_path

    qhard = parse_query("Qhard(A) :- R1(A), R2(A, B), R3(B)")
    database = generate_zipf_path(
        r2_tuples=BACKEND_R2_TUPLES, alpha=1.1, seed=13
    )
    with Session(database) as sizing:
        with sizing.activate():
            k = target_from_ratio(qhard, database, BACKEND_RATIO)

    def plain() -> None:
        with Session(database) as session:
            session.solve(qhard, k, heuristic="greedy")

    def unsampled() -> None:
        with use_tracer(Tracer(enabled=False)):
            plain()

    def instrumented() -> None:
        tracer = Tracer()
        with use_tracer(tracer), use_stats(StatsCollector()):
            with tracer.span("bench.obs_overhead", workload="zipf_greedy"):
                plain()

    plain()  # warm-up (imports, allocator): outside all timed variants
    baseline = float("inf")
    with_tracer = float("inf")
    with_stats = float("inf")
    for _ in range(OBS_REPEATS):
        start = time.perf_counter()
        plain()
        baseline = min(baseline, time.perf_counter() - start)
        start = time.perf_counter()
        unsampled()
        with_tracer = min(with_tracer, time.perf_counter() - start)
        start = time.perf_counter()
        instrumented()
        with_stats = min(with_stats, time.perf_counter() - start)

    tracer = Tracer()
    collector = StatsCollector()
    with use_tracer(tracer), use_stats(collector):
        with tracer.span("bench.obs_overhead", workload="zipf_greedy"):
            plain()
    stage_ms = {
        name: round(total, 3)
        for name, total in sorted(aggregate_stage_ms(tracer.export()).items())
    }
    return {
        "baseline_s": round(baseline, 6),
        "unsampled_s": round(with_tracer, 6),
        "overhead_ratio": round(with_tracer / baseline, 4),
        "stats_enabled_s": round(with_stats, 6),
        "stats_overhead_ratio": round(with_stats / baseline, 4),
        "stats_records": len(collector.records),
        "stage_ms": stage_ms,
    }


def _load_trajectory(path: Path) -> dict:
    """The trajectory file, recreated when missing, corrupt or malformed."""
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from _trajectory import load_trajectory

    return load_trajectory(path, {
        "workload": f"tpch[{SMALL_SIZE}] Q1 ratio={RATIO} (Figure 12) "
        f"+ zipf[{BACKEND_R2_TUPLES}] backend probe",
        "runs": [],
    })


def record_trajectory(
    path: Path, calibration: float, timings: dict = None, obs: dict = None
) -> None:
    """Append one run to the committed perf-trajectory JSON.

    Identical re-runs (same measurements, interpreter and NumPy -- only
    the timestamp differs) are deduplicated: re-invoking ``--record``
    without re-measuring must not inflate the history.  ``--obs-overhead``
    runs record an ``obs`` section (overhead ratio + stage timings)
    instead of the ``methods`` map.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    trajectory = _load_trajectory(path)
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "seed": repro_test_seed(),
        "calibration_seconds": round(calibration, 6),
    }
    if timings is not None:
        entry["methods"] = {k: round(v, 6) for k, v in timings.items()}
    if obs is not None:
        entry["obs"] = obs
    runs = trajectory["runs"]

    def sans_timestamp(run: object) -> object:
        if isinstance(run, dict):
            return {k: v for k, v in run.items() if k != "timestamp"}
        return run  # malformed entry: never equal to a fresh one

    if runs and sans_timestamp(runs[-1]) == sans_timestamp(entry):
        print(
            f"trajectory entry identical to the last run in {path}; "
            "skipping the duplicate append"
        )
        return
    runs.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"trajectory entry appended to {path} ({len(runs)} runs)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline JSON"
    )
    parser.add_argument(
        "--record",
        nargs="?",
        const=str(TRAJECTORY_PATH),
        default=None,
        metavar="PATH",
        help="append this run to the perf-trajectory JSON "
        f"(default: {TRAJECTORY_PATH.name})",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="gate the observability layer instead: fail when the disabled "
        f"path costs more than {(OBS_OVERHEAD_LIMIT - 1) * 100:g}%% or the "
        "enabled tracer+stats path more than "
        f"{(STATS_OVERHEAD_LIMIT - 1) * 100:g}%% over no instrumentation",
    )
    args = parser.parse_args(argv)

    if args.obs_overhead:
        calibration = calibrate()
        result = measure_obs_overhead()
        print(
            f"obs overhead: baseline {result['baseline_s'] * 1e3:.2f}ms, "
            f"unsampled tracer {result['unsampled_s'] * 1e3:.2f}ms "
            f"(x{result['overhead_ratio']:.4f}), "
            f"tracer+stats {result['stats_enabled_s'] * 1e3:.2f}ms "
            f"(x{result['stats_overhead_ratio']:.4f}, "
            f"{result['stats_records']} records)"
        )
        for stage, ms in result["stage_ms"].items():
            print(f"  stage {stage}: {ms:.3f}ms")
        if args.record:
            record_trajectory(Path(args.record), calibration, obs=result)
        failed = False
        budget = result["baseline_s"] * OBS_OVERHEAD_LIMIT + OBS_ABS_GRACE_S
        if result["unsampled_s"] > budget:
            print(
                "FAILED: disabled instrumentation costs "
                f"x{result['overhead_ratio']:.4f} "
                f"(limit x{OBS_OVERHEAD_LIMIT} + {OBS_ABS_GRACE_S * 1e3:g}ms grace)"
            )
            failed = True
        stats_budget = (
            result["baseline_s"] * STATS_OVERHEAD_LIMIT + OBS_ABS_GRACE_S
        )
        if result["stats_enabled_s"] > stats_budget:
            print(
                "FAILED: enabled tracer+stats costs "
                f"x{result['stats_overhead_ratio']:.4f} "
                f"(limit x{STATS_OVERHEAD_LIMIT} + {OBS_ABS_GRACE_S * 1e3:g}ms grace)"
            )
            failed = True
        if failed:
            return 1
        print("obs overhead ok")
        return 0

    calibration = calibrate()
    timings = measure()

    if args.record:
        record_trajectory(Path(args.record), calibration, timings)

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "calibration_seconds": round(calibration, 6),
                    "threshold": THRESHOLD,
                    "workload": f"tpch[{SMALL_SIZE}] Q1 ratio={RATIO} (Figure 12)",
                    "methods": {k: round(v, 6) for k, v in timings.items()},
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    scale = calibration / baseline["calibration_seconds"]
    print(f"calibration: {calibration:.4f}s (baseline scale x{scale:.2f})")

    failed = []
    for method, now in timings.items():
        base = baseline["methods"].get(method)
        if base is None:
            print(f"  {method}: {now * 1e3:8.2f}ms (no baseline entry, skipped)")
            continue
        budget = THRESHOLD * base * scale
        status = "ok" if now <= budget else "REGRESSION"
        print(
            f"  {method}: {now * 1e3:8.2f}ms  budget {budget * 1e3:8.2f}ms "
            f"(baseline {base * 1e3:.2f}ms)  {status}"
        )
        if now > budget:
            failed.append(method)

    if failed:
        print(f"FAILED: {', '.join(failed)} regressed more than {THRESHOLD}x")
        return 1
    print("benchmark smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
