"""Figure 7: exact algorithm on σ[PK=13370] Q1 -- counting vs reporting.

Paper's claim: the exact algorithm scales with the input size and with ρ, and
the counting version is consistently cheaper than the reporting version
(it only manipulates numbers inside the dynamic programs).
"""

import pytest

from benchmarks.conftest import RATIOS, TPCH_SIZES
from repro.core.adp import ADPSolver
from repro.core.selection import solve_with_selection
from repro.workloads.queries import Q1


@pytest.mark.parametrize("size", TPCH_SIZES)
@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("mode", ["counting", "reporting"])
def test_fig07_exact_selected_q1(benchmark, tpch_selected, size, ratio, mode):
    prepared = tpch_selected[size]
    k = max(1, int(ratio * prepared["selected_output"]))
    solver = ADPSolver(counting_only=(mode == "counting"))

    solution = benchmark(
        lambda: solve_with_selection(
            Q1, prepared["selection"], prepared["database"], k, solver=solver
        )
    )

    benchmark.extra_info.update(
        {
            "figure": "7",
            "input_size": prepared["database"].total_tuples(),
            "ratio": ratio,
            "mode": mode,
            "k": k,
            "solution_size": solution.size,
        }
    )
    # The selection makes the query poly-time (Lemma 12): the answer is exact.
    assert solution.optimal
    assert solution.size >= 1
