"""Figure 12: BruteForce vs the heuristics on a small Q1 instance (running time).

Paper's claim: even with the increasing-subset-size optimisation, brute force
is orders of magnitude slower than either heuristic and stops scaling almost
immediately, while returning the same quality on tiny inputs (Figure 13).
"""

import pytest

from repro.core.adp import ADPSolver
from repro.core.bruteforce import bruteforce_solve
from repro.experiments.harness import target_from_ratio
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch

SMALL_SIZE = 60
RATIO = 0.1


@pytest.fixture(scope="module")
def small_instance():
    database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
    k = target_from_ratio(Q1, database, RATIO)
    return database, k


@pytest.mark.parametrize("method", ["bruteforce", "greedy", "drastic"])
def test_fig12_bruteforce_vs_heuristics(benchmark, small_instance, method):
    database, k = small_instance

    if method == "bruteforce":
        solution = benchmark(
            lambda: bruteforce_solve(Q1, database, k, max_candidates=2000)
        )
    else:
        solver = ADPSolver(heuristic=method)
        solution = benchmark(lambda: solver.solve_in_context(Q1, database, k))

    benchmark.extra_info.update(
        {
            "figure": "12",
            "method": method,
            "k": k,
            "input_size": database.total_tuples(),
            "solution_size": solution.size,
        }
    )
    assert solution.removed_outputs >= k
