"""Figure 12: BruteForce vs the heuristics on a small Q1 instance (running time).

Paper's claim: even with the increasing-subset-size optimisation, brute force
is orders of magnitude slower than either heuristic and stops scaling almost
immediately, while returning the same quality on tiny inputs (Figure 13).
"""

import pytest

from repro.core.adp import ADPSolver
from repro.core.bruteforce import bruteforce_solve
from repro.experiments.harness import target_from_ratio
from repro.workloads.queries import Q1
from repro.workloads.tpch import generate_tpch

SMALL_SIZE = 60
RATIO = 0.1


@pytest.fixture(scope="module")
def small_instance():
    database = generate_tpch(total_tuples=SMALL_SIZE, seed=7)
    k = target_from_ratio(Q1, database, RATIO)
    return database, k


@pytest.mark.parametrize("method", ["bruteforce", "greedy", "drastic"])
def test_fig12_bruteforce_vs_heuristics(benchmark, small_instance, method):
    database, k = small_instance

    if method == "bruteforce":
        solution = benchmark(
            lambda: bruteforce_solve(Q1, database, k, max_candidates=2000)
        )
    else:
        solver = ADPSolver(heuristic=method)
        solution = benchmark(lambda: solver.solve_in_context(Q1, database, k))

    benchmark.extra_info.update(
        {
            "figure": "12",
            "method": method,
            "k": k,
            "input_size": database.total_tuples(),
            "solution_size": solution.size,
        }
    )
    assert solution.removed_outputs >= k


# --------------------------------------------------------------------------- #
# Array-backend acceptance: NumPy kernels >= 3x at the largest configured scale
# --------------------------------------------------------------------------- #
#: Largest configured scale for the backend comparison: an NP-hard-leaf
#: projection workload (zipf path family) big enough that the interpreter
#: loop, not allocation noise, dominates the pure-Python engine.
BACKEND_SCALE_R2_TUPLES = 60_000
BACKEND_SCALE_RATIO = 0.1
#: Acceptance floor (locally measured ~4.7x; 3x leaves CI headroom).  A
#: below-floor measurement is re-measured once before failing (shared
#: runners throttle unpredictably), and REPRO_SKIP_BACKEND_ACCEPTANCE=1
#: downgrades the assert to a report -- the same spirit as
#: bench_parallel.py's core-count self-gate.
MIN_BACKEND_SPEEDUP = 3.0


def test_backend_numpy_speedup_at_scale(benchmark):
    """backend="numpy" must beat backend="python" >= 3x, byte-identically.

    End-to-end fresh greedy solve (join + provenance index + greedy scan +
    verification) on the largest configured instance; the deletion sets of
    the two backends are asserted equal, and the packed provenance parity
    is covered exhaustively by tests/property/test_backend_parity.py.
    """
    import time

    from repro.engine.backend import numpy_available
    from repro.query.parser import parse_query
    from repro.session import Session
    from repro.workloads.zipf import generate_zipf_path

    if not numpy_available():
        pytest.skip("numpy not installed: python backend only")

    query = parse_query("Qhard(A) :- R1(A), R2(A, B), R3(B)")
    database = generate_zipf_path(
        r2_tuples=BACKEND_SCALE_R2_TUPLES, alpha=1.1, seed=13
    )
    with Session(database, backend="python") as sizing:
        with sizing.activate():
            k = target_from_ratio(query, database, BACKEND_SCALE_RATIO)

    def fresh_solve(backend):
        with Session(database, backend=backend) as session:
            start = time.perf_counter()
            solution = session.solve(query, k, heuristic="greedy")
            return time.perf_counter() - start, solution

    python_seconds, python_solution = fresh_solve("python")
    numpy_seconds, numpy_solution = fresh_solve("numpy")
    assert numpy_solution.removed == python_solution.removed
    assert numpy_solution.size == python_solution.size

    speedup = python_seconds / numpy_seconds
    if speedup < MIN_BACKEND_SPEEDUP:
        # One retake before failing: a single throttled interval on a
        # shared runner can compress the ratio; take the better of the two.
        python_seconds = min(python_seconds, fresh_solve("python")[0])
        numpy_seconds = min(numpy_seconds, fresh_solve("numpy")[0])
        speedup = python_seconds / numpy_seconds
    benchmark.extra_info.update(
        {
            "figure": "12-backend",
            "r2_tuples": BACKEND_SCALE_R2_TUPLES,
            "k": k,
            "python_ms": round(python_seconds * 1e3, 1),
            "numpy_ms": round(numpy_seconds * 1e3, 1),
            "speedup": round(speedup, 2),
        }
    )
    import os

    if os.environ.get("REPRO_SKIP_BACKEND_ACCEPTANCE") == "1":
        print(f"backend speedup {speedup:.2f}x (acceptance assert skipped)")
    else:
        assert speedup >= MIN_BACKEND_SPEEDUP, (
            f"numpy backend is only {speedup:.2f}x faster than python "
            f"(need >= {MIN_BACKEND_SPEEDUP}x): "
            f"{numpy_seconds * 1e3:.0f}ms vs {python_seconds * 1e3:.0f}ms"
        )

    def steady_state():
        with Session(database, backend="numpy") as session:
            return session.solve(query, k, heuristic="greedy").size

    benchmark.pedantic(steady_state, rounds=1, iterations=1)
